// Package store is faccd's crash-safe, content-addressed adapter cache.
// Synthesized adapters are expensive to produce (a full generate-and-test
// search) and cheap to keep, so the daemon memoizes them on disk keyed by
// the request digest (facc.CompileRequest.Digest). The failure model is
// hostile: the process may be SIGKILLed mid-write, the disk may tear a
// page, an operator may truncate a file. The store's contract is that a
// damaged entry is never served — it is detected, quarantined, and the
// adapter is recompiled — while undamaged entries survive any crash.
//
// Mechanics:
//
//   - Writes are atomic: temp file in the same directory, fsync, rename.
//   - Every entry carries a SHA-256 checksum over its payload; Get
//     verifies it (and that the entry matches the requested key) before
//     returning a hit. A mismatch moves the file to quarantine/ and
//     reports a miss.
//   - A small WAL records begin/commit around each write. Open replays
//     it: entries that began but never committed are re-verified and
//     quarantined when damaged, so a crash mid-write costs one recompile,
//     never a bad adapter.
//   - All disk I/O runs through a faultinject.IOBreaker: when storage
//     itself goes sick (consecutive I/O errors) the store degrades to a
//     pass-through — every Get is a miss, Puts are dropped — instead of
//     stalling the compile service on a dying disk.
//
// Metrics (in the registry passed to Open): store.hits, store.misses,
// store.writes, store.corrupt_quarantined, store.recovered_pending,
// store.io_errors, and the store.breaker.* family.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"facc/internal/faultinject"
	"facc/internal/obs"
)

// Entry is one cached adapter.
type Entry struct {
	// Key is the content address (the request digest) the entry was
	// stored under.
	Key string `json:"key"`
	// Target is the accelerator the adapter was synthesized for.
	Target string `json:"target"`
	// Function is the replaced user function.
	Function string `json:"function"`
	// AdapterC is the synthesized drop-in replacement C source.
	AdapterC string `json:"adapter_c"`
	// Trace is the trace ID of the request whose compilation produced
	// this adapter — the join key back to that request's spans, journal
	// events, and cost ledger. Provenance, not part of the content
	// address: two requests with the same digest share one entry, stamped
	// by whichever compiled it.
	Trace string `json:"trace,omitempty"`
	// Checksum is the hex SHA-256 of the payload fields, written at Put
	// time and re-verified on every Get.
	Checksum string `json:"checksum"`
}

// checksum computes the payload checksum (everything except the checksum
// field itself).
func (e *Entry) checksum() string {
	h := sha256.New()
	for _, s := range []string{e.Key, e.Target, e.Function, e.AdapterC, e.Trace} {
		fmt.Fprintf(h, "%d:", len(s))
		h.Write([]byte(s))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Store is a crash-safe content-addressed adapter cache rooted at one
// directory. Safe for concurrent use.
type Store struct {
	dir     string
	reg     *obs.Registry
	breaker *faultinject.IOBreaker

	// FaultHook, when non-nil, is consulted before every disk operation
	// (op is "wal", "write", "rename", "read") and may return an error to
	// inject storage faults in tests. Production leaves it nil.
	FaultHook func(op, path string) error

	wal *walWriter
}

// Open opens (creating if needed) the store at dir, replaying the WAL:
// entries whose writes began but never committed are re-verified and
// quarantined when damaged. reg may be nil.
func Open(dir string, reg *obs.Registry) (*Store, error) {
	s := &Store{dir: dir, reg: reg, breaker: faultinject.NewIOBreaker("store", reg)}
	for _, d := range []string{dir, s.objectsDir(), s.quarantineDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	wal, err := newWALWriter(s.walPath())
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.wal = wal
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Breaker exposes the store's I/O circuit breaker (state inspection and
// journaling hooks).
func (s *Store) Breaker() *faultinject.IOBreaker { return s.breaker }

func (s *Store) objectsDir() string    { return filepath.Join(s.dir, "objects") }
func (s *Store) quarantineDir() string { return filepath.Join(s.dir, "quarantine") }
func (s *Store) walPath() string       { return filepath.Join(s.dir, "wal.log") }

// objectPath fans entries out over 256 prefix directories so one
// directory never accumulates an unbounded listing.
func (s *Store) objectPath(key string) string {
	prefix := "xx"
	if len(key) >= 2 {
		prefix = key[:2]
	}
	return filepath.Join(s.objectsDir(), prefix, key+".json")
}

func (s *Store) fault(op, path string) error {
	if s.FaultHook != nil {
		return s.FaultHook(op, path)
	}
	return nil
}

func (s *Store) count(name string) { s.reg.Counter(name).Inc() }

// Get returns the entry stored under key, or found=false on a miss. A
// corrupt entry (checksum or key mismatch, unparsable JSON, truncation)
// is quarantined and reported as a miss: the caller recompiles. Storage
// I/O errors degrade to a miss through the breaker — the store never
// fails a compile, it only stops helping.
func (s *Store) Get(key string) (Entry, bool) {
	var e Entry
	var found bool
	err := s.breaker.Do(func() error {
		path := s.objectPath(key)
		if err := s.fault("read", path); err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if errors.Is(err, fs.ErrNotExist) {
			return nil // a clean miss, not an I/O failure
		}
		if err != nil {
			s.count("store.io_errors")
			return err
		}
		if jerr := json.Unmarshal(data, &e); jerr != nil || e.Key != key || e.Checksum != e.checksum() {
			s.quarantine(path)
			e = Entry{}
			return nil // corrupt entry: quarantined, serve a miss
		}
		found = true
		return nil
	})
	if err != nil || !found {
		s.count("store.misses")
		return Entry{}, false
	}
	s.count("store.hits")
	return e, true
}

// Put durably stores the entry under key (WAL begin → atomic temp+rename
// → WAL commit). Errors mean the entry may not be cached; they never
// imply a torn object is visible — Get would quarantine one.
func (s *Store) Put(key string, e Entry) error {
	e.Key = key
	e.Checksum = e.checksum()
	data, err := json.MarshalIndent(&e, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	werr := s.breaker.Do(func() error {
		if err := s.fault("wal", s.walPath()); err != nil {
			return err
		}
		if err := s.wal.append("begin " + key); err != nil {
			s.count("store.io_errors")
			return err
		}
		path := s.objectPath(key)
		if err := s.writeAtomic(path, data); err != nil {
			s.count("store.io_errors")
			return err
		}
		if err := s.wal.append("commit " + key); err != nil {
			s.count("store.io_errors")
			return err
		}
		return nil
	})
	if werr != nil {
		return fmt.Errorf("store: put %s: %w", key, werr)
	}
	s.count("store.writes")
	return nil
}

// writeAtomic writes data to path via a same-directory temp file, fsync,
// and rename, so a crash leaves either the old object or the new one —
// never a half-written file under the final name.
func (s *Store) writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := s.fault("write", path); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := s.fault("rename", path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	syncDir(dir)
	return nil
}

// quarantine moves a damaged file out of the object tree (never deletes:
// the evidence is kept for post-mortems) and counts it.
func (s *Store) quarantine(path string) {
	name := fmt.Sprintf("%s.%d", filepath.Base(path), time.Now().UnixNano())
	if err := os.Rename(path, filepath.Join(s.quarantineDir(), name)); err != nil {
		// Removal is the fallback: a corrupt entry must not stay servable.
		os.Remove(path)
	}
	s.count("store.corrupt_quarantined")
}

// recover replays the WAL: any key whose write began but never committed
// is re-verified (the crash may have hit before, during, or after the
// rename) and quarantined when damaged. Afterwards the WAL is truncated —
// every surviving object is verified-durable.
func (s *Store) recover() error {
	data, err := os.ReadFile(s.walPath())
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading WAL: %w", err)
	}
	pending := map[string]bool{}
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		if i == len(lines)-1 && line != "" {
			break // torn final record: the write it describes is unverified anyway
		}
		op, key, ok := strings.Cut(strings.TrimSpace(line), " ")
		if !ok {
			continue
		}
		switch op {
		case "begin":
			pending[key] = true
		case "commit":
			delete(pending, key)
		}
	}
	for key := range pending {
		s.count("store.recovered_pending")
		path := s.objectPath(key)
		data, err := os.ReadFile(path)
		if errors.Is(err, fs.ErrNotExist) {
			continue // crashed before the rename: nothing visible, nothing to do
		}
		if err != nil {
			return fmt.Errorf("store: verifying %s: %w", key, err)
		}
		var e Entry
		if jerr := json.Unmarshal(data, &e); jerr != nil || e.Key != key || e.Checksum != e.checksum() {
			s.quarantine(path)
		}
	}
	// Every object is now verified; start the next epoch with a fresh WAL.
	if err := os.WriteFile(s.walPath()+".tmp", nil, 0o644); err != nil {
		return fmt.Errorf("store: resetting WAL: %w", err)
	}
	if err := os.Rename(s.walPath()+".tmp", s.walPath()); err != nil {
		return fmt.Errorf("store: resetting WAL: %w", err)
	}
	return nil
}

// Len walks the object tree and returns the number of (well-named)
// entries; a maintenance/test helper, not a hot path.
func (s *Store) Len() int {
	n := 0
	filepath.WalkDir(s.objectsDir(), func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(d.Name(), ".json") {
			n++
		}
		return nil
	})
	return n
}

// Close flushes and closes the WAL. The object tree needs no shutdown —
// every write was already durable.
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.close()
}

// walWriter appends fsynced records to the write-ahead log. Appends are
// serialized: interleaved begin/commit records from concurrent Puts are
// fine (recovery is keyed), torn records within a line are not.
type walWriter struct {
	mu sync.Mutex
	f  *os.File
}

func newWALWriter(path string) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &walWriter{f: f}, nil
}

func (w *walWriter) append(record string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.WriteString(record + "\n"); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *walWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss;
// best-effort (some filesystems reject directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
