// Package store is faccd's crash-safe adapter database. Synthesized
// adapters are expensive to produce (a full generate-and-test search)
// and cheap to keep, so the daemon memoizes them keyed by the request
// digest (facc.CompileRequest.Digest). The failure model is hostile: the
// process may be SIGKILLed mid-write, the disk may tear a sector, a bit
// may flip in flight. The store's contract is that a damaged entry is
// never served — it is detected, quarantined, and the adapter is
// recompiled — while undamaged entries survive a crash at any point in
// the write path. The crash matrix (internal/eval) proves that contract
// at every enumerated crash site.
//
// Engine: a single-file copy-on-write B-tree (store.db) of checksummed
// fixed-size pages, plus a group-commit write-ahead log (wal.log).
//
//   - MVCC snapshots: Get pins the committed {root, txid, pager} and
//     reads lock-free while the single committer goroutine builds the
//     next transaction. Readers never block on a committing compile.
//   - Copy-on-write: a commit never overwrites a page the committed
//     tree references. Freed pages enter a free list once no pinned
//     snapshot can still read them, and the free list is persisted so
//     space survives restarts.
//   - Group commit: concurrent Puts coalesce into one WAL record (all
//     dirty page images + the new meta) with one fsync — the durability
//     point — then a checkpoint writes the pages and the alternating
//     meta slot. Crash mid-checkpoint? Replay rewrites the pages.
//   - Secondary indexes: by target and by user-visible signature, kept
//     as key ranges in the same tree, so "all adapters for this target"
//     is an index walk, not a scan.
//   - Quarantine: a page that fails its checksum (or an entry that
//     fails its own) is copied into quarantine/ for post-mortems,
//     poisoned in memory so every later read misses deterministically,
//     and dropped from the tree. The quarantine directory is bounded by
//     age and count so repeated corruption cannot fill the disk.
//   - Compaction rewrites live entries into a fresh file and installs
//     it with one atomic rename, reclaiming freed and leaked pages;
//     pinned snapshots keep reading the old file handle until released.
//
// All disk I/O runs through a faultinject.VFS (crash-site injection
// under test) and a faultinject.IOBreaker: when storage itself goes
// sick the store degrades to a pass-through — every Get a miss, Puts
// dropped — instead of stalling the compile service on a dying disk.
//
// Metrics (in the registry passed to Open): store.hits, store.misses,
// store.writes, store.deletes, store.commits, store.commit_batches,
// store.corrupt_quarantined, store.recovered_pending, store.wal_torn,
// store.wal_resets, store.freelist_lost, store.compactions,
// store.compact_aborted, store.io_errors, gauges store.pages,
// store.free_pages, store.quarantined, store.snapshots, and the
// store.breaker.* family.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"facc/internal/faultinject"
	"facc/internal/obs"
)

// Entry is one cached adapter.
type Entry struct {
	// Key is the content address (the request digest) the entry was
	// stored under.
	Key string `json:"key"`
	// Target is the accelerator the adapter was synthesized for.
	Target string `json:"target"`
	// Function is the replaced user function.
	Function string `json:"function"`
	// Sig is the user-visible signature of the replaced function — the
	// key of the by-signature index ("all ffta adapters for this
	// signature" is one index walk).
	Sig string `json:"sig,omitempty"`
	// AdapterC is the synthesized drop-in replacement C source.
	AdapterC string `json:"adapter_c"`
	// Trace is the trace ID of the request whose compilation produced
	// this adapter — the join key back to that request's spans, journal
	// events, and cost ledger. Provenance, not part of the content
	// address: two requests with the same digest share one entry, stamped
	// by whichever compiled it.
	Trace string `json:"trace,omitempty"`
	// Checksum is the hex SHA-256 of the payload fields, written at Put
	// time and re-verified on every Get — defense in depth above the
	// page checksums.
	Checksum string `json:"checksum"`
}

// checksum computes the payload checksum (everything except the checksum
// field itself).
func (e *Entry) checksum() string {
	h := sha256.New()
	for _, s := range []string{e.Key, e.Target, e.Function, e.Sig, e.AdapterC, e.Trace} {
		fmt.Fprintf(h, "%d:", len(s))
		h.Write([]byte(s))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Key-space layout inside the one tree. Primary entries live under "o",
// index entries (empty values) under "t" and "s".
var (
	prefixPrimary = []byte("o\x00")
	prefixTarget  = []byte("t\x00")
	prefixSig     = []byte("s\x00")
)

func primaryKey(key string) []byte {
	return append(append([]byte(nil), prefixPrimary...), key...)
}

func targetKey(target, key string) []byte {
	k := append(append([]byte(nil), prefixTarget...), target...)
	k = append(k, 0)
	return append(k, key...)
}

// sigHash bounds signature index keys: signatures are free-form C
// prototypes, so the index keys their SHA-256 prefix.
func sigHash(sig string) string {
	h := sha256.Sum256([]byte(sig))
	return hex.EncodeToString(h[:8])
}

func sigKey(sig, key string) []byte {
	k := append(append([]byte(nil), prefixSig...), sigHash(sig)...)
	k = append(k, 0)
	return append(k, key...)
}

// Options tunes the store. The zero value means defaults.
type Options struct {
	// PageSize is the database page size in bytes (default 4096). Tests
	// use small pages to force deep trees and overflow chains.
	PageSize int
	// CachePages caps the in-memory page cache (default 512 pages).
	CachePages int
	// VerifyOnOpen walks the whole tree after recovery, quarantining any
	// damaged page or entry before the store serves (default true; set
	// DisableVerifyOnOpen to skip).
	DisableVerifyOnOpen bool
	// MaxWALBytes truncates the WAL after a commit once it exceeds this
	// size (default 4 MiB). Every commit checkpoints, so truncation only
	// discards records already applied.
	MaxWALBytes int64
	// AutoCompactPages triggers background compaction when the file
	// exceeds this many pages and at least half are dead (default 4096;
	// negative disables).
	AutoCompactPages int64
	// QuarantineMaxFiles bounds the quarantine directory by count
	// (default 512; oldest evidence is discarded first).
	QuarantineMaxFiles int
	// QuarantineMaxAge bounds quarantined evidence by age (default 7
	// days).
	QuarantineMaxAge time.Duration
	// VFS is the file-system seam (default the real OS). The crash
	// matrix injects a faultinject.CrashVFS here.
	VFS faultinject.VFS
}

func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = defaultPage
	}
	if o.CachePages == 0 {
		o.CachePages = 512
	}
	if o.MaxWALBytes == 0 {
		o.MaxWALBytes = 4 << 20
	}
	if o.AutoCompactPages == 0 {
		o.AutoCompactPages = 4096
	}
	if o.QuarantineMaxFiles == 0 {
		o.QuarantineMaxFiles = 512
	}
	if o.QuarantineMaxAge == 0 {
		o.QuarantineMaxAge = 7 * 24 * time.Hour
	}
	if o.VFS == nil {
		o.VFS = faultinject.OSVFS{}
	}
	return o
}

// storeOp is one unit of work for the committer goroutine.
type storeOp struct {
	kind    opKind
	key     string // put, delete
	value   []byte // put: marshalled Entry
	target  string // put: index keys
	sig     string
	page    uint64 // drop
	pg      *pager // drop: the generation the damage was seen in
	resp    chan error
	counter string // counter to bump on success
}

type opKind int

const (
	opPut opKind = iota
	opDelete
	opDrop
	opCompact
)

// Store is the crash-safe adapter database rooted at one directory.
// Safe for concurrent use: reads are MVCC snapshots, writes serialize
// through a single group-committing goroutine.
type Store struct {
	dir  string
	reg  *obs.Registry
	opts Options
	vfs  faultinject.VFS

	breaker *faultinject.IOBreaker

	// FaultHook, when non-nil, is consulted before disk operations (op
	// is "read", "wal_append", "wal_sync", "page_write", "db_sync",
	// "meta_write", "compact") and may return an error to inject
	// storage faults, or block to hold a commit in flight. Production
	// leaves it nil.
	FaultHook func(op, path string) error

	mu          sync.Mutex
	pg          *pager
	m           meta
	free        []uint64            // sorted, reusable now
	freeChain   []uint64            // persisted freelist chain pages (freed next commit)
	pendingFree map[uint64][]uint64 // txid -> pages freed by that commit, awaiting snapshot release
	snapRefs    map[uint64]int      // active snapshot count per txid
	pendingQuar map[string]bool     // entry keys quarantined, deletion in flight
	closed      bool

	walF   faultinject.File
	walOff int64

	ops  chan *storeOp
	stop chan struct{}
	done chan struct{}
}

// Open opens (creating if needed) the store at dir with defaults,
// recovering from any prior crash: the WAL is replayed, damaged pages
// and entries are quarantined, and the surviving tree is verified.
// reg may be nil.
func Open(dir string, reg *obs.Registry) (*Store, error) {
	return OpenOptions(dir, reg, Options{})
}

// OpenOptions opens the store with explicit tuning.
func OpenOptions(dir string, reg *obs.Registry, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.PageSize < minPageSize {
		return nil, fmt.Errorf("store: page size %d below minimum %d", opts.PageSize, minPageSize)
	}
	s := &Store{
		dir: dir, reg: reg, opts: opts, vfs: opts.VFS,
		breaker:     faultinject.NewIOBreaker("store", reg),
		pendingFree: map[uint64][]uint64{},
		snapRefs:    map[uint64]int{},
		pendingQuar: map[string]bool{},
		ops:         make(chan *storeOp, 256),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	for _, d := range []string{dir, s.quarantineDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	// A leftover compaction scratch file is pre-rename garbage.
	os.Remove(s.compactPath())

	if err := s.recover(); err != nil {
		return nil, err
	}
	if !opts.DisableVerifyOnOpen {
		if err := s.verifyTree(); err != nil {
			return nil, err
		}
	}
	s.gcQuarantine()
	s.updateGaugesLocked()
	go s.committer()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Breaker exposes the store's I/O circuit breaker (state inspection and
// journaling hooks).
func (s *Store) Breaker() *faultinject.IOBreaker { return s.breaker }

func (s *Store) dbPath() string        { return filepath.Join(s.dir, "store.db") }
func (s *Store) walPath() string       { return filepath.Join(s.dir, "wal.log") }
func (s *Store) compactPath() string   { return filepath.Join(s.dir, "store.db.compact") }
func (s *Store) quarantineDir() string { return filepath.Join(s.dir, "quarantine") }

func (s *Store) fault(op, path string) error {
	if s.FaultHook != nil {
		return s.FaultHook(op, path)
	}
	return nil
}

func (s *Store) count(name string) { s.reg.Counter(name).Inc() }

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

// recover opens the database and WAL files, picks the newest valid meta,
// replays committed WAL records the checkpoint never finished, and
// quarantines anything damaged. After recover the durable state and the
// in-memory state agree exactly.
func (s *Store) recover() error {
	f, err := s.vfs.Open(s.dbPath())
	if err != nil {
		return fmt.Errorf("store: opening db: %w", err)
	}
	s.pg = newPager(f, s.opts.PageSize, s.opts.CachePages)

	m, ok, err := s.loadMeta(f)
	if err != nil {
		return err
	}
	if !ok {
		// No valid meta in a non-trivial file: the database is beyond
		// page-level repair. Quarantine the whole file — never guess —
		// and start fresh; every entry recompiles.
		if err := s.quarantineWholeDB(f); err != nil {
			return err
		}
		m = meta{txid: 0, root: 0, npages: metaSlots}
		if err := s.initFreshDB(m); err != nil {
			return err
		}
	}
	s.m = m

	if err := s.openWAL(); err != nil {
		return err
	}
	if err := s.replayWAL(); err != nil {
		return err
	}
	s.loadFreelist()
	return nil
}

// loadMeta reads both meta slots and returns the valid one with the
// highest txid. ok=false means neither slot is valid.
func (s *Store) loadMeta(f faultinject.File) (meta, bool, error) {
	size, err := f.Size()
	if err != nil {
		return meta{}, false, fmt.Errorf("store: sizing db: %w", err)
	}
	if size == 0 {
		m := meta{txid: 0, root: 0, npages: metaSlots}
		if err := s.initFreshDB(m); err != nil {
			return meta{}, false, err
		}
		return m, true, nil
	}
	var best meta
	found := false
	for slot := uint64(0); slot < metaSlots; slot++ {
		buf, rerr := s.pg.read(slot)
		if rerr != nil {
			continue
		}
		m, derr := decodeMeta(buf, slot, s.opts.PageSize)
		if derr != nil {
			continue
		}
		if !found || m.txid > best.txid {
			best, found = m, true
		}
	}
	return best, found, nil
}

// initFreshDB writes the initial meta for an empty database.
func (s *Store) initFreshDB(m meta) error {
	if err := s.pg.write(0, encodeMeta(m, 0, s.opts.PageSize)); err != nil {
		return fmt.Errorf("store: initializing db: %w", err)
	}
	// Extend the file over the second (invalid-until-used) meta slot so
	// the file length matches npages.
	if err := s.pg.write(1, make([]byte, s.opts.PageSize)); err != nil {
		return fmt.Errorf("store: initializing db: %w", err)
	}
	s.pg.evict(1) // a zero page is not a valid cached page
	if err := s.pg.sync(); err != nil {
		return fmt.Errorf("store: initializing db: %w", err)
	}
	return nil
}

// quarantineWholeDB preserves an unrecoverable database file as evidence
// and clears the way for a fresh one.
func (s *Store) quarantineWholeDB(f faultinject.File) error {
	s.count("store.corrupt_quarantined")
	dst := filepath.Join(s.quarantineDir(), fmt.Sprintf("store.db.%d", time.Now().UnixNano()))
	if err := s.vfs.Rename(s.dbPath(), dst); err != nil {
		// Could not preserve it; a corrupt db must still not be reused.
		s.vfs.Remove(s.dbPath())
	}
	nf, err := s.vfs.Open(s.dbPath())
	if err != nil {
		return fmt.Errorf("store: recreating db: %w", err)
	}
	s.pg.retire()
	s.pg = newPager(nf, s.opts.PageSize, s.opts.CachePages)
	return nil
}

func (s *Store) openWAL() error {
	wf, err := s.vfs.Open(s.walPath())
	if err != nil {
		return fmt.Errorf("store: opening wal: %w", err)
	}
	s.walF = wf
	return nil
}

// replayWAL applies committed records the checkpoint never finished and
// quarantines the torn tail of a crashed append. Afterwards the WAL is
// reset — every surviving page is checkpointed and verified-durable.
func (s *Store) replayWAL() error {
	size, err := s.walF.Size()
	if err != nil {
		return fmt.Errorf("store: sizing wal: %w", err)
	}
	if size > 0 {
		data := make([]byte, size)
		if _, err := readFull(s.walF, data, 0); err != nil {
			return fmt.Errorf("store: reading wal: %w", err)
		}
		recs, validLen, reason := decodeWALRecords(data, s.opts.PageSize)
		if reason != nil && validLen < size {
			// The torn tail of the append the crash interrupted: the
			// commit it described never reached its durability point.
			s.count("store.wal_torn")
			tail := data[validLen:]
			if len(tail) > 1<<16 {
				tail = tail[:1<<16]
			}
			s.writeQuarantineFile("wal-tail.bin", tail)
		}
		replayed := false
		for _, rec := range recs {
			if rec.m.txid <= s.m.txid {
				continue // already checkpointed before the crash
			}
			s.count("store.recovered_pending")
			for _, id := range rec.ids {
				if err := s.pg.write(id, rec.pages[id]); err != nil {
					return fmt.Errorf("store: replaying wal page %d: %w", id, err)
				}
			}
			s.m = rec.m
			replayed = true
		}
		if replayed {
			if err := s.pg.sync(); err != nil {
				return fmt.Errorf("store: syncing replayed pages: %w", err)
			}
			slot := s.m.txid % metaSlots
			if err := s.pg.write(slot, encodeMeta(s.m, slot, s.opts.PageSize)); err != nil {
				return fmt.Errorf("store: writing recovered meta: %w", err)
			}
			if err := s.pg.sync(); err != nil {
				return fmt.Errorf("store: syncing recovered meta: %w", err)
			}
		}
	}
	if err := s.walF.Truncate(0); err != nil {
		return fmt.Errorf("store: resetting wal: %w", err)
	}
	if err := s.walF.Sync(); err != nil {
		return fmt.Errorf("store: resetting wal: %w", err)
	}
	s.walOff = 0
	return nil
}

// loadFreelist decodes the persisted free list. Damage here loses free
// space, never data: the list is dropped (compaction reclaims the leak)
// and the chain is quarantined as evidence.
func (s *Store) loadFreelist() {
	ids, chain, err := decodeFreelist(s.pg, s.m.freeHead)
	if err != nil {
		s.count("store.freelist_lost")
		var ce *CorruptPageError
		if errors.As(err, &ce) && len(ce.Data) > 0 {
			s.writeQuarantineFile(fmt.Sprintf("freelist-page-%d.bin", ce.ID), ce.Data)
		}
		s.free, s.freeChain = nil, nil
		return
	}
	keep := ids[:0]
	for _, id := range ids {
		if id >= metaSlots && id < s.m.npages && !s.pg.isPoisoned(id) {
			keep = append(keep, id)
		}
	}
	sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
	s.free = dedupSorted(keep)
	s.freeChain = chain
}

// verifyTree walks the whole tree — every node, every overflow chain,
// every entry checksum — quarantining and dropping anything damaged,
// until a full walk comes back clean. This is what turns "a crash
// happened" into "damaged entries miss, everything else serves".
func (s *Store) verifyTree() error {
	for round := 0; ; round++ {
		if round > 4096 {
			return fmt.Errorf("store: verify did not converge after %d rounds", round)
		}
		problem := s.scanOnce()
		if problem == nil {
			return nil
		}
		var ce *CorruptPageError
		if problem.key != "" {
			// A damaged value (corrupt overflow page or failed entry
			// checksum): quarantine the evidence and delete the entry.
			if errors.As(problem.err, &ce) {
				s.quarantinePage(s.pg, ce)
			} else {
				s.quarantineEntryBytes(problem.key, problem.data)
			}
			if err := s.commitDirect(&storeOp{kind: opDelete, key: problem.key}); err != nil {
				return fmt.Errorf("store: deleting quarantined entry: %w", err)
			}
			s.mu.Lock()
			delete(s.pendingQuar, problem.key)
			s.mu.Unlock()
			continue
		}
		if errors.As(problem.err, &ce) {
			// A damaged tree node: quarantine it and drop its subtree.
			s.quarantinePage(s.pg, ce)
			if err := s.commitDirect(&storeOp{kind: opDrop, page: ce.ID, pg: s.pg}); err != nil {
				return fmt.Errorf("store: dropping quarantined page %d: %w", ce.ID, err)
			}
			continue
		}
		return problem.err
	}
}

type scanProblem struct {
	err  error
	key  string // non-empty: the damage is scoped to one entry
	data []byte
}

// scanOnce walks the tree and returns the first problem found, or nil.
func (s *Store) scanOnce() *scanProblem {
	r := committedReader{pg: s.pg}
	var problem *scanProblem
	err := iterate(r, s.m.root, nil, func(key []byte, it item) (bool, error) {
		if !bytes.HasPrefix(key, prefixPrimary) {
			return true, nil // index entries carry no value to verify
		}
		k := string(key[len(prefixPrimary):])
		val, verr := readValue(r, s.opts.PageSize, it)
		if verr != nil {
			problem = &scanProblem{err: verr, key: k}
			return false, nil
		}
		var e Entry
		if jerr := json.Unmarshal(val, &e); jerr != nil || e.Key != k || e.Checksum != e.checksum() {
			problem = &scanProblem{err: fmt.Errorf("store: entry %s fails its checksum", k), key: k, data: val}
			return false, nil
		}
		return true, nil
	})
	if problem != nil {
		return problem
	}
	if err != nil && !errors.Is(err, errStopIteration) {
		return &scanProblem{err: err}
	}
	return nil
}

func readFull(f faultinject.File, buf []byte, off int64) (int, error) {
	n, err := f.ReadAt(buf, off)
	if n == len(buf) {
		return n, nil
	}
	return n, err
}

// ---------------------------------------------------------------------
// Snapshots (MVCC reads)
// ---------------------------------------------------------------------

// snapshot pins one committed tree: its meta, and the pager generation
// the tree lives in. Reads through a snapshot are isolated from every
// concurrent commit and from compaction.
type snapshot struct {
	s  *Store
	pg *pager
	m  meta
}

func (s *Store) acquireSnapshot() *snapshot {
	s.mu.Lock()
	sp := &snapshot{s: s, pg: s.pg, m: s.m}
	sp.pg.acquire()
	s.snapRefs[sp.m.txid]++
	s.mu.Unlock()
	return sp
}

func (sp *snapshot) release() {
	s := sp.s
	s.mu.Lock()
	s.snapRefs[sp.m.txid]--
	if s.snapRefs[sp.m.txid] <= 0 {
		delete(s.snapRefs, sp.m.txid)
		s.promoteFreeLocked()
	}
	s.mu.Unlock()
	sp.pg.release()
}

func (sp *snapshot) page(id uint64) ([]byte, error) { return sp.pg.read(id) }

// committedReader reads the current committed tree (recovery and the
// committer's transaction base).
type committedReader struct{ pg *pager }

func (r committedReader) page(id uint64) ([]byte, error) { return r.pg.read(id) }

// promoteFreeLocked moves pages freed by old commits into the reusable
// free list once no active snapshot predates the commit that freed
// them. Caller holds s.mu.
func (s *Store) promoteFreeLocked() {
	min := ^uint64(0)
	for t := range s.snapRefs {
		if t < min {
			min = t
		}
	}
	for t, ids := range s.pendingFree {
		if t > min {
			continue
		}
		keep := ids[:0]
		for _, id := range ids {
			if !s.pg.isPoisoned(id) {
				keep = append(keep, id)
			}
		}
		sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
		s.free = mergeSorted(s.free, keep)
		delete(s.pendingFree, t)
	}
}

func mergeSorted(a, b []uint64) []uint64 {
	if len(b) == 0 {
		return a
	}
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return dedupSorted(out)
}

func dedupSorted(a []uint64) []uint64 {
	out := a[:0]
	for i, v := range a {
		if i == 0 || v != a[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------

// Get returns the entry stored under key, or found=false on a miss. A
// corrupt page or entry is quarantined and reported as a miss: the
// caller recompiles. Storage I/O errors degrade to a miss through the
// breaker — the store never fails a compile, it only stops helping.
func (s *Store) Get(key string) (Entry, bool) {
	var e Entry
	var found bool
	err := s.breaker.Do(func() error {
		if err := s.fault("read", s.dbPath()); err != nil {
			s.count("store.io_errors")
			return err
		}
		s.mu.Lock()
		pending := s.pendingQuar[key]
		s.mu.Unlock()
		if pending {
			return nil // quarantined, deletion in flight: a deterministic miss
		}
		sp := s.acquireSnapshot()
		defer sp.release()
		val, err := lookup(sp, s.opts.PageSize, sp.m.root, primaryKey(key))
		if errors.Is(err, errNotFound) {
			return nil
		}
		var ce *CorruptPageError
		if errors.As(err, &ce) {
			// Damaged: quarantine the page and retire the entry that
			// references it. Every later Get misses deterministically.
			s.quarantinePage(sp.pg, ce)
			s.retireEntry(key)
			return nil
		}
		if err != nil {
			s.count("store.io_errors")
			return err
		}
		if jerr := json.Unmarshal(val, &e); jerr != nil || e.Key != key || e.Checksum != e.checksum() {
			s.quarantineEntry(key, val)
			e = Entry{}
			return nil
		}
		found = true
		return nil
	})
	if err != nil || !found {
		s.count("store.misses")
		return Entry{}, false
	}
	s.count("store.hits")
	return e, true
}

// listByIndex walks one index prefix and materializes the entries it
// points at. Dangling or damaged targets are skipped (compaction prunes
// them); a damaged index page is quarantined and ends the walk early.
func (s *Store) listByIndex(prefix []byte) []Entry {
	sp := s.acquireSnapshot()
	defer sp.release()
	var out []Entry
	err := iterate(sp, sp.m.root, prefix, func(key []byte, _ item) (bool, error) {
		if !bytes.HasPrefix(key, prefix) {
			return false, nil
		}
		digest := string(key[len(prefix):])
		val, verr := lookup(sp, s.opts.PageSize, sp.m.root, primaryKey(digest))
		if verr != nil {
			var ce *CorruptPageError
			if errors.As(verr, &ce) {
				s.quarantinePage(sp.pg, ce)
			}
			return true, nil
		}
		var e Entry
		if jerr := json.Unmarshal(val, &e); jerr != nil || e.Key != digest || e.Checksum != e.checksum() {
			s.quarantineEntry(digest, val)
			return true, nil
		}
		out = append(out, e)
		return true, nil
	})
	if err != nil && !errors.Is(err, errStopIteration) {
		var ce *CorruptPageError
		if errors.As(err, &ce) {
			s.quarantinePage(sp.pg, ce)
		}
	}
	return out
}

// ListByTarget returns every cached adapter synthesized for target, via
// the by-target index.
func (s *Store) ListByTarget(target string) []Entry {
	k := append(append([]byte(nil), prefixTarget...), target...)
	return s.listByIndex(append(k, 0))
}

// ListBySig returns every cached adapter whose replaced function has the
// given user-visible signature, via the by-signature index.
func (s *Store) ListBySig(sig string) []Entry {
	k := append(append([]byte(nil), prefixSig...), sigHash(sig)...)
	return s.listByIndex(append(k, 0))
}

// Len counts primary entries; a maintenance/test helper, not a hot path.
func (s *Store) Len() int {
	sp := s.acquireSnapshot()
	defer sp.release()
	n := 0
	iterate(sp, sp.m.root, prefixPrimary, func(key []byte, _ item) (bool, error) {
		if !bytes.HasPrefix(key, prefixPrimary) {
			return false, nil
		}
		n++
		return true, nil
	})
	return n
}

// Check walks the committed tree end to end — every page, chain and
// entry checksum — and returns the problems found (nil means the store
// is fully consistent). Used by tests and the crash matrix.
func (s *Store) Check() []string {
	sp := s.acquireSnapshot()
	defer sp.release()
	var problems []string
	err := iterate(sp, sp.m.root, nil, func(key []byte, it item) (bool, error) {
		if !bytes.HasPrefix(key, prefixPrimary) {
			return true, nil
		}
		val, verr := readValue(sp, s.opts.PageSize, it)
		if verr != nil {
			problems = append(problems, verr.Error())
			return true, nil
		}
		k := string(key[len(prefixPrimary):])
		var e Entry
		if jerr := json.Unmarshal(val, &e); jerr != nil || e.Key != k || e.Checksum != e.checksum() {
			problems = append(problems, fmt.Sprintf("entry %s fails its checksum", k))
		}
		return true, nil
	})
	if err != nil && !errors.Is(err, errStopIteration) {
		problems = append(problems, err.Error())
	}
	return problems
}

// Stats is a point-in-time view of the engine, for /status and tests.
type Stats struct {
	Txid        uint64 `json:"txid"`
	Pages       uint64 `json:"pages"`
	FreePages   int    `json:"free_pages"`
	PendingFree int    `json:"pending_free"`
	Snapshots   int    `json:"snapshots"`
	Poisoned    int    `json:"poisoned_pages"`
	Quarantined int    `json:"quarantined_files"`
	WALBytes    int64  `json:"wal_bytes"`
}

// Stats reports engine internals and refreshes the store gauges.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Txid:      s.m.txid,
		Pages:     s.m.npages,
		FreePages: len(s.free),
		WALBytes:  s.walOff,
	}
	for _, ids := range s.pendingFree {
		st.PendingFree += len(ids)
	}
	for _, n := range s.snapRefs {
		st.Snapshots += n
	}
	st.Poisoned = s.pg.poisonedCount()
	s.updateGaugesLocked()
	s.mu.Unlock()
	st.Quarantined = s.quarantineCount()
	return st
}

func (s *Store) updateGaugesLocked() {
	s.reg.Gauge("store.pages").Set(float64(s.m.npages))
	s.reg.Gauge("store.free_pages").Set(float64(len(s.free)))
	n := 0
	for _, c := range s.snapRefs {
		n += c
	}
	s.reg.Gauge("store.snapshots").Set(float64(n))
}

// ---------------------------------------------------------------------
// Writes (group commit)
// ---------------------------------------------------------------------

// Put durably stores the entry under key. It returns once the entry's
// commit record is fsynced — concurrent Puts coalesce into one record
// and one fsync. Errors mean the entry may not be cached; they never
// imply a torn entry is visible (Get would quarantine one).
func (s *Store) Put(key string, e Entry) error {
	e.Key = key
	e.Checksum = e.checksum()
	data, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	op := &storeOp{
		kind: opPut, key: key, value: data, target: e.Target, sig: e.Sig,
		resp: make(chan error, 1), counter: "store.writes",
	}
	if err := s.submit(op); err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	return nil
}

// Delete removes the entry under key (and its index entries). Missing
// keys are not an error.
func (s *Store) Delete(key string) error {
	op := &storeOp{kind: opDelete, key: key, resp: make(chan error, 1), counter: "store.deletes"}
	if err := s.submit(op); err != nil {
		return fmt.Errorf("store: delete %s: %w", key, err)
	}
	return nil
}

// Compact synchronously rewrites live entries into a fresh file,
// reclaiming dead and leaked pages, and installs it atomically.
func (s *Store) Compact() error {
	op := &storeOp{kind: opCompact, resp: make(chan error, 1)}
	if err := s.submit(op); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	return nil
}

var errClosed = errors.New("store is closed")

func (s *Store) submit(op *storeOp) error {
	select {
	case s.ops <- op:
	case <-s.stop:
		return errClosed
	}
	select {
	case err := <-op.resp:
		return err
	case <-s.stop:
		return errClosed
	}
}

// submitAsync enqueues best-effort cleanup (quarantine drops). If the
// queue is full the drop is skipped — the damage is already contained
// by poisoning, and compaction removes the dangling reference later.
func (s *Store) submitAsync(op *storeOp) {
	select {
	case s.ops <- op:
	default:
	}
}

// committer is the single writer: it drains queued operations into
// batches, each batch becoming one transaction, one WAL record, one
// fsync.
func (s *Store) committer() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			return
		case op := <-s.ops:
			batch := []*storeOp{op}
		drain:
			for len(batch) < 64 {
				select {
				case op2 := <-s.ops:
					batch = append(batch, op2)
				default:
					break drain
				}
			}
			s.runBatch(batch)
		}
	}
}

func (s *Store) runBatch(batch []*storeOp) {
	// Compactions run alone: split them out of the batch.
	var work []*storeOp
	for _, op := range batch {
		if op.kind == opCompact {
			err := s.breaker.Do(func() error { return s.compactNow() })
			op.resp <- err
			continue
		}
		work = append(work, op)
	}
	if len(work) == 0 {
		return
	}
	err := s.breaker.Do(func() error { return s.commit(work) })
	if err == nil {
		s.count("store.commit_batches")
	}
	for _, op := range work {
		if err == nil {
			s.count("store.commits")
			if op.counter != "" {
				s.count(op.counter)
			}
			if op.kind == opPut || op.kind == opDelete {
				s.mu.Lock()
				delete(s.pendingQuar, op.key)
				s.mu.Unlock()
			}
		}
		if op.resp != nil {
			op.resp <- err
		}
	}
	s.maybeAutoCompact()
}

// commitDirect runs one operation through the commit path synchronously;
// recovery uses it before the committer goroutine exists.
func (s *Store) commitDirect(op *storeOp) error {
	return s.commit([]*storeOp{op})
}

// commit applies a batch as one transaction: build the new tree
// copy-on-write, persist the free list, append + fsync one WAL record
// (the durability point), checkpoint the pages and meta, and install the
// new committed state.
func (s *Store) commit(batch []*storeOp) error {
	s.mu.Lock()
	pg := s.pg
	t := &tx{
		base:     committedReader{pg: pg},
		pageSize: s.opts.PageSize,
		m:        s.m,
		txid:     s.m.txid + 1,
		dirty:    map[uint64][]byte{},
		alloced:  map[uint64]bool{},
		free:     s.free,
		evict:    pg.evict,
	}
	prevChain := s.freeChain
	s.free = nil // ownership moves to the transaction
	s.mu.Unlock()

	// On failure, return the unallocated remainder of the free list.
	restoreFree := func() {
		s.mu.Lock()
		sort.Slice(t.free, func(i, j int) bool { return t.free[i] < t.free[j] })
		s.free = mergeSorted(s.free, t.free)
		s.mu.Unlock()
	}

	for _, op := range batch {
		if err := s.applyOp(t, op); err != nil {
			restoreFree()
			return err
		}
	}
	t.m.txid = t.txid

	// Persist the post-commit free set: the transaction's leftovers plus
	// everything this commit freed (safe to reuse after a reboot — no
	// snapshots survive one) plus the previous freelist chain. Chain
	// pages are allocated from file growth only, keeping the set stable
	// while it is being encoded.
	persist := append(append([]uint64(nil), t.free...), t.scratch...)
	persist = append(persist, t.freed...)
	persist = append(persist, prevChain...)
	sort.Slice(persist, func(i, j int) bool { return persist[i] < persist[j] })
	persist = dedupSorted(persist)
	head, chain, flPages := encodeFreelist(persist, s.opts.PageSize, t.txid, func() uint64 {
		id := t.m.npages
		t.m.npages++
		return id
	})
	for id, buf := range flPages {
		t.dirty[id] = buf
	}
	t.m.freeHead = head

	// Durability point: one record, one fsync.
	rec := encodeWALRecord(t.m, t.dirty, s.opts.PageSize)
	fail := func(stage string, err error) error {
		s.count("store.io_errors")
		restoreFree()
		return fmt.Errorf("store: commit %s: %w", stage, err)
	}
	if err := s.fault("wal_append", s.walPath()); err != nil {
		return fail("wal append", err)
	}
	if _, err := s.walF.WriteAt(rec, s.walOff); err != nil {
		return fail("wal append", err)
	}
	if err := s.fault("wal_sync", s.walPath()); err != nil {
		s.walF.Truncate(s.walOff)
		return fail("wal sync", err)
	}
	if err := s.walF.Sync(); err != nil {
		s.walF.Truncate(s.walOff)
		return fail("wal sync", err)
	}
	s.walOff += int64(len(rec))

	// Checkpoint. The WAL record is durable: if anything below fails the
	// in-memory state stays at the old commit, and either a retry or
	// replay-on-reopen converges on this transaction's pages.
	ids := make([]uint64, 0, len(t.dirty))
	for id := range t.dirty {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if err := s.fault("page_write", s.dbPath()); err != nil {
		return fail("page write", err)
	}
	for _, id := range ids {
		if err := pg.write(id, t.dirty[id]); err != nil {
			return fail("page write", err)
		}
	}
	if err := s.fault("db_sync", s.dbPath()); err != nil {
		return fail("db sync", err)
	}
	if err := pg.sync(); err != nil {
		return fail("db sync", err)
	}
	slot := t.m.txid % metaSlots
	mbuf := encodeMeta(t.m, slot, s.opts.PageSize)
	if err := s.fault("meta_write", s.dbPath()); err != nil {
		return fail("meta write", err)
	}
	if err := pg.write(slot, mbuf); err != nil {
		return fail("meta write", err)
	}
	if err := pg.sync(); err != nil {
		return fail("meta sync", err)
	}

	// Install the new committed state.
	s.mu.Lock()
	s.m = t.m
	scratch := append([]uint64(nil), t.scratch...)
	sort.Slice(t.free, func(i, j int) bool { return t.free[i] < t.free[j] })
	sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
	s.free = mergeSorted(s.free, mergeSorted(t.free, scratch))
	if len(t.freed) > 0 || len(prevChain) > 0 {
		s.pendingFree[t.txid] = append(append([]uint64(nil), t.freed...), prevChain...)
	}
	s.freeChain = chain
	s.promoteFreeLocked()
	s.updateGaugesLocked()
	walOff := s.walOff
	s.mu.Unlock()

	// The WAL only matters until its records are checkpointed — which
	// they all now are — so cap its growth.
	if walOff > s.opts.MaxWALBytes {
		if err := s.walF.Truncate(0); err == nil {
			if err := s.walF.Sync(); err == nil {
				s.mu.Lock()
				s.walOff = 0
				s.mu.Unlock()
				s.count("store.wal_resets")
			}
		}
	}
	return nil
}

// applyOp applies one operation to the transaction. A corrupt page
// discovered on the write path is quarantined and dropped, then the
// operation retries against the repaired tree.
func (s *Store) applyOp(t *tx, op *storeOp) error {
	for attempt := 0; attempt < 32; attempt++ {
		err := s.applyOnce(t, op)
		var ce *CorruptPageError
		if errors.As(err, &ce) {
			s.quarantinePage(s.pg, ce)
			if _, derr := t.dropSubtree(ce.ID); derr != nil {
				if errors.As(derr, &ce) {
					continue // the drop found more damage; quarantine that too
				}
				return derr
			}
			continue
		}
		return err
	}
	return fmt.Errorf("store: apply did not converge (cascading corruption)")
}

func (s *Store) applyOnce(t *tx, op *storeOp) error {
	switch op.kind {
	case opPut:
		// Replacing an entry whose target or signature changed must
		// retire the old index keys. An unreadable (corrupt-chain) old
		// value skips the cleanup — compaction prunes dangling keys.
		old, err := t.get(primaryKey(op.key))
		var pce *CorruptPageError
		if err != nil && !errors.Is(err, errNotFound) && !errors.As(err, &pce) {
			return err
		}
		if err == nil {
			var oe Entry
			if json.Unmarshal(old, &oe) == nil {
				if oe.Target != "" && oe.Target != op.target {
					if _, derr := t.delete(targetKey(oe.Target, op.key)); derr != nil {
						return derr
					}
				}
				if oe.Sig != "" && oe.Sig != op.sig {
					if _, derr := t.delete(sigKey(oe.Sig, op.key)); derr != nil {
						return derr
					}
				}
			}
		}
		if err := t.put(primaryKey(op.key), op.value); err != nil {
			return err
		}
		if op.target != "" {
			if err := t.put(targetKey(op.target, op.key), nil); err != nil {
				return err
			}
		}
		if op.sig != "" {
			if err := t.put(sigKey(op.sig, op.key), nil); err != nil {
				return err
			}
		}
		return nil
	case opDelete:
		old, err := t.get(primaryKey(op.key))
		var pce *CorruptPageError
		if err != nil && !errors.Is(err, errNotFound) && !errors.As(err, &pce) {
			return err
		}
		if err == nil {
			var oe Entry
			if json.Unmarshal(old, &oe) == nil {
				if oe.Target != "" {
					if _, derr := t.delete(targetKey(oe.Target, op.key)); derr != nil {
						return derr
					}
				}
				if oe.Sig != "" {
					if _, derr := t.delete(sigKey(oe.Sig, op.key)); derr != nil {
						return derr
					}
				}
			}
		}
		_, err = t.delete(primaryKey(op.key))
		if errors.Is(err, errNotFound) {
			return nil
		}
		return err
	case opDrop:
		if op.pg != nil && op.pg != s.pg {
			return nil // damage was in a retired generation; nothing to drop
		}
		_, err := t.dropSubtree(op.page)
		return err
	default:
		return fmt.Errorf("store: unknown op kind %d", op.kind)
	}
}

// ---------------------------------------------------------------------
// Quarantine
// ---------------------------------------------------------------------

// quarantinePage contains page-level damage: poison the page (all later
// reads miss deterministically and the ID is never reused), preserve the
// bytes as evidence, and schedule the tree reference for removal.
// Concurrent readers hitting the same page quarantine it exactly once.
func (s *Store) quarantinePage(pg *pager, ce *CorruptPageError) {
	if !pg.markPoisoned(ce.ID) {
		return
	}
	s.count("store.corrupt_quarantined")
	s.mu.Lock()
	s.free = removeSorted(s.free, ce.ID)
	for t, ids := range s.pendingFree {
		s.pendingFree[t] = removeUnsorted(ids, ce.ID)
	}
	s.mu.Unlock()
	if len(ce.Data) > 0 {
		s.writeQuarantineFile(fmt.Sprintf("page-%d.bin", ce.ID), ce.Data)
	}
	s.submitAsync(&storeOp{kind: opDrop, page: ce.ID, pg: pg})
}

// retireEntry schedules removal of a key whose value became unreadable
// (its pages are already quarantined and counted): the key misses until
// a recompile overwrites it, and its dangling leaf item is deleted.
func (s *Store) retireEntry(key string) {
	s.mu.Lock()
	already := s.pendingQuar[key]
	s.pendingQuar[key] = true
	s.mu.Unlock()
	if !already {
		s.submitAsync(&storeOp{kind: opDelete, key: key})
	}
}

// quarantineEntry contains entry-level damage (a value that decodes but
// fails its own checksum): record the key so every Get misses until a
// recompile overwrites it, preserve the bytes, and schedule deletion.
func (s *Store) quarantineEntry(key string, data []byte) {
	s.mu.Lock()
	if s.pendingQuar[key] {
		s.mu.Unlock()
		return
	}
	s.pendingQuar[key] = true
	s.mu.Unlock()
	s.count("store.corrupt_quarantined")
	s.writeQuarantineFile(fmt.Sprintf("entry-%s.json", sanitizeName(key)), data)
	s.submitAsync(&storeOp{kind: opDelete, key: key})
}

// quarantineEntryBytes is the synchronous (recovery-time) variant.
func (s *Store) quarantineEntryBytes(key string, data []byte) {
	s.mu.Lock()
	already := s.pendingQuar[key]
	s.pendingQuar[key] = true
	s.mu.Unlock()
	if already {
		return
	}
	s.count("store.corrupt_quarantined")
	s.writeQuarantineFile(fmt.Sprintf("entry-%s.json", sanitizeName(key)), data)
}

func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

// writeQuarantineFile preserves evidence bytes under a unique name, then
// prunes the directory to its configured bounds.
func (s *Store) writeQuarantineFile(name string, data []byte) {
	path := filepath.Join(s.quarantineDir(), fmt.Sprintf("%s.%d", name, time.Now().UnixNano()))
	os.WriteFile(path, data, 0o644)
	s.gcQuarantine()
}

// gcQuarantine bounds the quarantine directory by age and count (oldest
// evidence goes first) and refreshes the store.quarantined gauge, so
// repeated corruption can never fill the disk.
func (s *Store) gcQuarantine() {
	dir := s.quarantineDir()
	des, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	type qf struct {
		name string
		mod  time.Time
	}
	files := make([]qf, 0, len(des))
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		info, ierr := de.Info()
		if ierr != nil {
			continue
		}
		files = append(files, qf{name: de.Name(), mod: info.ModTime()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
	cutoff := time.Now().Add(-s.opts.QuarantineMaxAge)
	keep := files[:0]
	for _, f := range files {
		if f.mod.Before(cutoff) {
			os.Remove(filepath.Join(dir, f.name))
			continue
		}
		keep = append(keep, f)
	}
	for len(keep) > s.opts.QuarantineMaxFiles {
		os.Remove(filepath.Join(dir, keep[0].name))
		keep = keep[1:]
	}
	s.reg.Gauge("store.quarantined").Set(float64(len(keep)))
}

func (s *Store) quarantineCount() int {
	des, err := os.ReadDir(s.quarantineDir())
	if err != nil {
		return 0
	}
	n := 0
	for _, de := range des {
		if !de.IsDir() {
			n++
		}
	}
	return n
}

func removeSorted(a []uint64, id uint64) []uint64 {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= id })
	if i < len(a) && a[i] == id {
		return append(a[:i], a[i+1:]...)
	}
	return a
}

func removeUnsorted(a []uint64, id uint64) []uint64 {
	out := a[:0]
	for _, v := range a {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------

func (s *Store) maybeAutoCompact() {
	if s.opts.AutoCompactPages <= 0 {
		return
	}
	s.mu.Lock()
	npages := s.m.npages
	dead := len(s.free) + len(s.freeChain)
	for _, ids := range s.pendingFree {
		dead += len(ids)
	}
	s.mu.Unlock()
	if int64(npages) >= s.opts.AutoCompactPages && uint64(dead)*2 >= npages {
		if err := s.breaker.Do(func() error { return s.compactNow() }); err == nil {
			return
		}
	}
}

// emptyReader backs a transaction that builds a tree from scratch: every
// page it could reference is in the dirty set, so base reads are a bug.
type emptyReader struct{}

func (emptyReader) page(id uint64) ([]byte, error) {
	return nil, fmt.Errorf("store: compaction read page %d outside its own tree", id)
}

// compactNow (committer goroutine only) bulk-copies every live entry
// into a fresh file and installs it with one atomic rename. A crash
// before the rename leaves the old file untouched; after it, the new
// meta's txid is >= every WAL record's, so replay is a no-op. Pinned
// snapshots keep reading the retired generation's still-open handle.
func (s *Store) compactNow() error {
	if err := s.fault("compact", s.compactPath()); err != nil {
		return err
	}
	sp := s.acquireSnapshot()
	defer sp.release()

	nf, err := s.vfs.Open(s.compactPath())
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	abort := func(why error) error {
		nf.Close()
		s.vfs.Remove(s.compactPath())
		s.count("store.compact_aborted")
		return why
	}
	t := &tx{
		base:     emptyReader{},
		pageSize: s.opts.PageSize,
		m:        meta{txid: sp.m.txid, npages: metaSlots},
		txid:     sp.m.txid,
		dirty:    map[uint64][]byte{},
		alloced:  map[uint64]bool{},
	}
	// Rebuild from primary entries only: dangling index keys and leaked
	// pages do not survive the copy.
	iterErr := iterate(sp, sp.m.root, prefixPrimary, func(key []byte, it item) (bool, error) {
		if !bytes.HasPrefix(key, prefixPrimary) {
			return false, nil
		}
		val, verr := readValue(sp, s.opts.PageSize, it)
		if verr != nil {
			return true, nil // damaged value: quarantined elsewhere, not copied
		}
		var e Entry
		if jerr := json.Unmarshal(val, &e); jerr != nil {
			return true, nil
		}
		k := string(key[len(prefixPrimary):])
		if perr := t.put(primaryKey(k), val); perr != nil {
			return false, perr
		}
		if e.Target != "" {
			if perr := t.put(targetKey(e.Target, k), nil); perr != nil {
				return false, perr
			}
		}
		if e.Sig != "" {
			if perr := t.put(sigKey(e.Sig, k), nil); perr != nil {
				return false, perr
			}
		}
		return true, nil
	})
	if iterErr != nil && !errors.Is(iterErr, errStopIteration) {
		return abort(fmt.Errorf("store: compact scan: %w", iterErr))
	}

	pg2 := newPager(nf, s.opts.PageSize, s.opts.CachePages)
	ids := make([]uint64, 0, len(t.dirty))
	for id := range t.dirty {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if werr := pg2.write(id, t.dirty[id]); werr != nil {
			return abort(fmt.Errorf("store: compact write: %w", werr))
		}
	}
	if serr := pg2.sync(); serr != nil {
		return abort(fmt.Errorf("store: compact sync: %w", serr))
	}
	slot := t.m.txid % metaSlots
	if werr := pg2.write(slot, encodeMeta(t.m, slot, s.opts.PageSize)); werr != nil {
		return abort(fmt.Errorf("store: compact meta: %w", werr))
	}
	if serr := pg2.sync(); serr != nil {
		return abort(fmt.Errorf("store: compact meta sync: %w", serr))
	}
	if rerr := s.vfs.Rename(s.compactPath(), s.dbPath()); rerr != nil {
		return abort(fmt.Errorf("store: compact install: %w", rerr))
	}

	s.mu.Lock()
	old := s.pg
	s.pg = pg2
	s.m = t.m
	s.free = nil
	s.freeChain = nil
	s.pendingFree = map[uint64][]uint64{}
	s.updateGaugesLocked()
	s.mu.Unlock()
	old.retire()

	// Old WAL records describe the retired file; drop them.
	if err := s.walF.Truncate(0); err == nil {
		if err := s.walF.Sync(); err == nil {
			s.mu.Lock()
			s.walOff = 0
			s.mu.Unlock()
		}
	}
	s.count("store.compactions")
	return nil
}

// ---------------------------------------------------------------------
// Shutdown
// ---------------------------------------------------------------------

// Close stops the committer and closes the files. Every acknowledged Put
// was already durable at its WAL fsync, so Close loses nothing.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	<-s.done
	var first error
	if s.walF != nil {
		if err := s.walF.Sync(); err != nil && first == nil {
			first = err
		}
		if err := s.walF.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.mu.Lock()
	pg := s.pg
	s.mu.Unlock()
	if pg != nil {
		pg.retire() // closes the db file once the last snapshot releases
	}
	return first
}
