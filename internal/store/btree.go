package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// The adapter database is one copy-on-write B-tree over the page file.
// Leaves hold (key, value) items — values too large to inline spill into
// checksummed overflow chains — and branches hold (separator, child)
// items. A writing transaction never modifies a reachable page: every
// touched node is rewritten under a fresh page ID and the old IDs are
// freed once no snapshot can still read them, which is what lets MVCC
// readers traverse the committed root lock-free while a commit is in
// flight.
//
// Item encodings inside a page payload:
//
//	leaf   keyLen u16 | flag u8 | inline: valLen u32 | key | val
//	                   | spilled: head u64, totalLen u32, valCRC u32 | key
//	branch keyLen u16 | child u64 | key
//
// A branch item's key is the smallest key reachable under its child;
// lookups descend into the last child whose separator is <= the target.

var errNotFound = errors.New("store: key not found")

const (
	flagInline   = 0
	flagOverflow = 1
)

// item is one decoded leaf or branch entry.
type item struct {
	key     []byte
	val     []byte // inline value (leaf, flagInline)
	child   uint64 // branch child page
	ovfl    uint64 // overflow chain head (leaf, flagOverflow)
	ovflLen uint32
	ovflCRC uint32
}

func (it item) spilled() bool { return it.ovfl != 0 }

// node is one decoded tree page.
type node struct {
	typ   uint16
	items []item
}

// payloadCap is the usable byte budget of one page.
func payloadCap(pageSize int) int { return pageSize - pageHeaderSize }

// inlineMax is the largest value stored inside a leaf; longer values
// spill to an overflow chain.
func inlineMax(pageSize int) int { return payloadCap(pageSize) / 4 }

// maxKeyLen bounds keys so several items always fit per page.
func maxKeyLen(pageSize int) int { return payloadCap(pageSize) / 4 }

func itemSize(typ uint16, it item) int {
	switch typ {
	case pageBranch:
		return 2 + 8 + len(it.key)
	default:
		if it.spilled() {
			return 2 + 1 + 8 + 4 + 4 + len(it.key)
		}
		return 2 + 1 + 4 + len(it.key) + len(it.val)
	}
}

func (n *node) encodedSize() int {
	sz := 0
	for _, it := range n.items {
		sz += itemSize(n.typ, it)
	}
	return sz
}

// encode seals the node into a fresh page image.
func (n *node) encode(pageSize int, id, txid uint64) ([]byte, error) {
	buf := make([]byte, pageSize)
	p := buf[pageHeaderSize:]
	off := 0
	for _, it := range n.items {
		if len(it.key) > maxKeyLen(pageSize) {
			return nil, fmt.Errorf("store: key length %d exceeds page budget %d", len(it.key), maxKeyLen(pageSize))
		}
		switch n.typ {
		case pageBranch:
			binary.LittleEndian.PutUint16(p[off:], uint16(len(it.key)))
			binary.LittleEndian.PutUint64(p[off+2:], it.child)
			copy(p[off+10:], it.key)
			off += 2 + 8 + len(it.key)
		default:
			binary.LittleEndian.PutUint16(p[off:], uint16(len(it.key)))
			if it.spilled() {
				p[off+2] = flagOverflow
				binary.LittleEndian.PutUint64(p[off+3:], it.ovfl)
				binary.LittleEndian.PutUint32(p[off+11:], it.ovflLen)
				binary.LittleEndian.PutUint32(p[off+15:], it.ovflCRC)
				copy(p[off+19:], it.key)
				off += 19 + len(it.key)
			} else {
				p[off+2] = flagInline
				binary.LittleEndian.PutUint32(p[off+3:], uint32(len(it.val)))
				copy(p[off+7:], it.key)
				copy(p[off+7+len(it.key):], it.val)
				off += 7 + len(it.key) + len(it.val)
			}
		}
	}
	if off > len(p) {
		return nil, fmt.Errorf("store: node overflows page (%d > %d)", off, len(p))
	}
	sealPage(buf, n.typ, len(n.items), id, txid, 0)
	return buf, nil
}

// decodeNode parses a verified page into a node. Structural damage that
// survived the checksum (it cannot, absent a hash collision — this is
// defense in depth) reports a CorruptPageError.
func decodeNode(buf []byte, id uint64) (*node, error) {
	typ := binary.LittleEndian.Uint16(buf[4:6])
	if typ != pageLeaf && typ != pageBranch {
		return nil, &CorruptPageError{ID: id, Reason: fmt.Sprintf("expected tree node, found type %d", typ), Data: buf}
	}
	count := int(binary.LittleEndian.Uint16(buf[6:8]))
	p := buf[pageHeaderSize:]
	n := &node{typ: typ, items: make([]item, 0, count)}
	off := 0
	bad := func(reason string) (*node, error) {
		return nil, &CorruptPageError{ID: id, Reason: reason, Data: buf}
	}
	for i := 0; i < count; i++ {
		if off+2 > len(p) {
			return bad("item header past page end")
		}
		kl := int(binary.LittleEndian.Uint16(p[off:]))
		var it item
		switch typ {
		case pageBranch:
			if off+10+kl > len(p) {
				return bad("branch item past page end")
			}
			it.child = binary.LittleEndian.Uint64(p[off+2:])
			it.key = p[off+10 : off+10+kl : off+10+kl]
			off += 10 + kl
		default:
			if off+3 > len(p) {
				return bad("leaf item header past page end")
			}
			switch p[off+2] {
			case flagOverflow:
				if off+19+kl > len(p) {
					return bad("spilled leaf item past page end")
				}
				it.ovfl = binary.LittleEndian.Uint64(p[off+3:])
				it.ovflLen = binary.LittleEndian.Uint32(p[off+11:])
				it.ovflCRC = binary.LittleEndian.Uint32(p[off+15:])
				it.key = p[off+19 : off+19+kl : off+19+kl]
				off += 19 + kl
			case flagInline:
				if off+7 > len(p) {
					return bad("leaf item header past page end")
				}
				vl := int(binary.LittleEndian.Uint32(p[off+3:]))
				if off+7+kl+vl > len(p) {
					return bad("inline leaf item past page end")
				}
				it.key = p[off+7 : off+7+kl : off+7+kl]
				it.val = p[off+7+kl : off+7+kl+vl : off+7+kl+vl]
				off += 7 + kl + vl
			default:
				return bad(fmt.Sprintf("unknown leaf item flag %d", p[off+2]))
			}
		}
		if len(n.items) > 0 && bytes.Compare(n.items[len(n.items)-1].key, it.key) >= 0 {
			return bad("keys out of order")
		}
		n.items = append(n.items, it)
	}
	return n, nil
}

// search returns the index of key (found=true) or its insertion point.
func (n *node) search(key []byte) (int, bool) {
	i := sort.Search(len(n.items), func(i int) bool {
		return bytes.Compare(n.items[i].key, key) >= 0
	})
	if i < len(n.items) && bytes.Equal(n.items[i].key, key) {
		return i, true
	}
	return i, false
}

// childFor picks the branch slot to descend for key.
func (n *node) childFor(key []byte) int {
	i := sort.Search(len(n.items), func(i int) bool {
		return bytes.Compare(n.items[i].key, key) > 0
	})
	if i > 0 {
		i--
	}
	return i
}

// pageReader resolves page IDs to verified page images — a snapshot, or
// a transaction overlaying its dirty pages on one.
type pageReader interface {
	page(id uint64) ([]byte, error)
}

func readNode(r pageReader, id uint64) (*node, error) {
	buf, err := r.page(id)
	if err != nil {
		return nil, err
	}
	return decodeNode(buf, id)
}

// readValue materializes an item's value, walking and verifying the
// overflow chain for spilled values.
func readValue(r pageReader, pageSize int, it item) ([]byte, error) {
	if !it.spilled() {
		return it.val, nil
	}
	out := make([]byte, 0, it.ovflLen)
	seen := map[uint64]bool{}
	for id := it.ovfl; id != 0; {
		if seen[id] {
			return nil, &CorruptPageError{ID: id, Reason: "overflow chain cycles"}
		}
		seen[id] = true
		buf, err := r.page(id)
		if err != nil {
			return nil, err
		}
		if typ := binary.LittleEndian.Uint16(buf[4:6]); typ != pageOverflow {
			return nil, &CorruptPageError{ID: id, Reason: fmt.Sprintf("overflow chain points at type-%d page", typ), Data: buf}
		}
		n := int(binary.LittleEndian.Uint16(buf[6:8]))
		if n > payloadCap(len(buf)) {
			return nil, &CorruptPageError{ID: id, Reason: "overflow length overruns page", Data: buf}
		}
		out = append(out, buf[pageHeaderSize:pageHeaderSize+n]...)
		if uint32(len(out)) > it.ovflLen {
			return nil, &CorruptPageError{ID: id, Reason: "overflow chain longer than recorded length", Data: buf}
		}
		id = binary.LittleEndian.Uint64(buf[24:32])
	}
	if uint32(len(out)) != it.ovflLen {
		return nil, &CorruptPageError{ID: it.ovfl, Reason: fmt.Sprintf("overflow chain yields %d bytes, recorded %d", len(out), it.ovflLen)}
	}
	if got := crc32.Checksum(out, castagnoli); got != it.ovflCRC {
		return nil, &CorruptPageError{ID: it.ovfl, Reason: fmt.Sprintf("value checksum %08x != %08x", got, it.ovflCRC), Data: out}
	}
	return out, nil
}

// lookup finds key under root, returning its value bytes.
func lookup(r pageReader, pageSize int, root uint64, key []byte) ([]byte, error) {
	if root == 0 {
		return nil, errNotFound
	}
	id := root
	for depth := 0; ; depth++ {
		if depth > 64 {
			return nil, &CorruptPageError{ID: id, Reason: "tree deeper than 64 levels (cycle)"}
		}
		n, err := readNode(r, id)
		if err != nil {
			return nil, err
		}
		if n.typ == pageLeaf {
			i, ok := n.search(key)
			if !ok {
				return nil, errNotFound
			}
			return readValue(r, pageSize, n.items[i])
		}
		if len(n.items) == 0 {
			return nil, errNotFound
		}
		id = n.items[n.childFor(key)].child
	}
}

// iterate walks keys >= from in order, calling fn with each leaf item;
// fn returns false to stop. Unreadable subtrees abort with the error.
func iterate(r pageReader, root uint64, from []byte, fn func(key []byte, it item) (bool, error)) error {
	if root == 0 {
		return nil
	}
	return iterateNode(r, root, from, fn, 0)
}

func iterateNode(r pageReader, id uint64, from []byte, fn func([]byte, item) (bool, error), depth int) error {
	if depth > 64 {
		return &CorruptPageError{ID: id, Reason: "tree deeper than 64 levels (cycle)"}
	}
	n, err := readNode(r, id)
	if err != nil {
		return err
	}
	if n.typ == pageLeaf {
		for _, it := range n.items {
			if from != nil && bytes.Compare(it.key, from) < 0 {
				continue
			}
			ok, err := fn(it.key, it)
			if err != nil || !ok {
				if err == nil {
					err = errStopIteration
				}
				return err
			}
		}
		return nil
	}
	start := 0
	if from != nil {
		start = n.childFor(from)
	}
	for i := start; i < len(n.items); i++ {
		if err := iterateNode(r, n.items[i].child, from, fn, depth+1); err != nil {
			return err
		}
	}
	return nil
}

var errStopIteration = errors.New("store: stop iteration")

// ---------------------------------------------------------------------
// Writing transactions (copy-on-write)
// ---------------------------------------------------------------------

// tx is one writing transaction: a working meta plus the dirty pages it
// will commit. Only the committer goroutine builds transactions, so no
// locking happens here; allocation state is handed in and out by the
// store under its mutex.
type tx struct {
	base     pageReader
	pageSize int
	m        meta
	txid     uint64

	dirty   map[uint64][]byte
	freed   []uint64
	alloced map[uint64]bool
	scratch []uint64 // allocated then freed within this tx: reusable
	free    []uint64 // in-memory free list (ownership taken from the store)
	evict   func(uint64)
}

func (t *tx) page(id uint64) ([]byte, error) {
	if buf, ok := t.dirty[id]; ok {
		return buf, nil
	}
	return t.base.page(id)
}

// alloc hands out a page ID: tx scratch, then the free list (smallest
// first, deterministically), then file growth.
func (t *tx) alloc() uint64 {
	var id uint64
	switch {
	case len(t.scratch) > 0:
		id = t.scratch[0]
		t.scratch = t.scratch[1:]
	case len(t.free) > 0:
		id = t.free[0]
		t.free = t.free[1:]
	default:
		id = t.m.npages
		t.m.npages++
	}
	t.alloced[id] = true
	if t.evict != nil {
		t.evict(id)
	}
	return id
}

// freePage returns an ID to circulation: in-tx allocations go back to
// scratch, committed pages wait for snapshot-aware promotion.
func (t *tx) freePage(id uint64) {
	if t.alloced[id] {
		delete(t.alloced, id)
		delete(t.dirty, id)
		t.scratch = append(t.scratch, id)
		return
	}
	t.freed = append(t.freed, id)
}

// writeNode encodes a node under a fresh page ID.
func (t *tx) writeNode(n *node) (uint64, error) {
	id := t.alloc()
	buf, err := n.encode(t.pageSize, id, t.txid)
	if err != nil {
		return 0, err
	}
	t.dirty[id] = buf
	return id, nil
}

// writeValue spills a value into an overflow chain, returning the item
// reference fields.
func (t *tx) writeValue(val []byte) (head uint64, length, crc uint32) {
	crc = crc32.Checksum(val, castagnoli)
	length = uint32(len(val))
	chunk := payloadCap(t.pageSize)
	n := (len(val) + chunk - 1) / chunk
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = t.alloc()
	}
	for i := 0; i < n; i++ {
		lo, hi := i*chunk, (i+1)*chunk
		if hi > len(val) {
			hi = len(val)
		}
		buf := make([]byte, t.pageSize)
		copy(buf[pageHeaderSize:], val[lo:hi])
		next := uint64(0)
		if i+1 < n {
			next = ids[i+1]
		}
		sealPage(buf, pageOverflow, hi-lo, ids[i], t.txid, next)
		t.dirty[ids[i]] = buf
	}
	return ids[0], length, crc
}

// freeValue releases a spilled value's chain. An unreadable chain is
// simply abandoned — compaction reclaims leaked pages.
func (t *tx) freeValue(it item) {
	if !it.spilled() {
		return
	}
	seen := map[uint64]bool{}
	for id := it.ovfl; id != 0 && !seen[id]; {
		seen[id] = true
		buf, err := t.page(id)
		if err != nil || binary.LittleEndian.Uint16(buf[4:6]) != pageOverflow {
			return
		}
		next := binary.LittleEndian.Uint64(buf[24:32])
		t.freePage(id)
		id = next
	}
}

// makeItem builds a leaf item, spilling large values.
func (t *tx) makeItem(key, val []byte) item {
	it := item{key: append([]byte(nil), key...)}
	if len(val) > inlineMax(t.pageSize) {
		it.ovfl, it.ovflLen, it.ovflCRC = t.writeValue(val)
	} else {
		it.val = append([]byte(nil), val...)
	}
	return it
}

// put inserts or replaces key.
func (t *tx) put(key, val []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen(t.pageSize) {
		return fmt.Errorf("store: key length %d out of range [1,%d]", len(key), maxKeyLen(t.pageSize))
	}
	if t.m.root == 0 {
		n := &node{typ: pageLeaf, items: []item{t.makeItem(key, val)}}
		id, err := t.writeNode(n)
		if err != nil {
			return err
		}
		t.m.root = id
		return nil
	}
	repl, err := t.insert(t.m.root, key, val)
	if err != nil {
		return err
	}
	if len(repl) == 1 {
		t.m.root = repl[0].child
		return nil
	}
	root := &node{typ: pageBranch, items: repl}
	id, err := t.writeNode(root)
	if err != nil {
		return err
	}
	t.m.root = id
	return nil
}

// insert rewrites the path from id down for (key, val), returning the
// replacement child entries (one, or two after a split). The first
// returned entry's key is the subtree's smallest key.
func (t *tx) insert(id uint64, key, val []byte) ([]item, error) {
	n, err := readNode(t, id)
	if err != nil {
		return nil, err
	}
	cp := &node{typ: n.typ, items: append([]item(nil), n.items...)}
	if n.typ == pageLeaf {
		i, found := cp.search(key)
		it := t.makeItem(key, val)
		if found {
			t.freeValue(cp.items[i])
			cp.items[i] = it
		} else {
			cp.items = append(cp.items, item{})
			copy(cp.items[i+1:], cp.items[i:])
			cp.items[i] = it
		}
	} else {
		if len(cp.items) == 0 {
			return nil, &CorruptPageError{ID: id, Reason: "empty branch"}
		}
		slot := cp.childFor(key)
		repl, err := t.insert(cp.items[slot].child, key, val)
		if err != nil {
			return nil, err
		}
		cp.items = append(cp.items[:slot], append(repl, cp.items[slot+1:]...)...)
	}
	t.freePage(id)
	return t.splitWrite(cp)
}

// splitWrite persists a rewritten node, splitting when it no longer fits
// one page, and returns the branch entries describing the result.
func (t *tx) splitWrite(n *node) ([]item, error) {
	cap := payloadCap(t.pageSize)
	if n.encodedSize() <= cap || len(n.items) < 2 {
		id, err := t.writeNode(n)
		if err != nil {
			return nil, err
		}
		return []item{{key: append([]byte(nil), n.items[0].key...), child: id}}, nil
	}
	// Split at the half-size boundary (each side keeps >= 1 item).
	half, acc, cut := n.encodedSize()/2, 0, 0
	for i, it := range n.items {
		acc += itemSize(n.typ, it)
		if acc > half && i+1 < len(n.items) {
			cut = i + 1
			break
		}
	}
	if cut == 0 {
		cut = len(n.items) / 2
	}
	left := &node{typ: n.typ, items: n.items[:cut]}
	right := &node{typ: n.typ, items: n.items[cut:]}
	out := make([]item, 0, 4)
	for _, half := range []*node{left, right} {
		repl, err := t.splitWrite(half)
		if err != nil {
			return nil, err
		}
		out = append(out, repl...)
	}
	return out, nil
}

// delete removes key; found=false when absent.
func (t *tx) delete(key []byte) (bool, error) {
	if t.m.root == 0 {
		return false, nil
	}
	repl, found, err := t.remove(t.m.root, key)
	if err != nil || !found {
		return found, err
	}
	switch len(repl) {
	case 0:
		t.m.root = 0
	case 1:
		t.m.root = repl[0].child
	default:
		root := &node{typ: pageBranch, items: repl}
		id, werr := t.writeNode(root)
		if werr != nil {
			return false, werr
		}
		t.m.root = id
	}
	return true, nil
}

// remove rewrites the path for a deletion. An empty replacement list
// means the whole subtree vanished.
func (t *tx) remove(id uint64, key []byte) ([]item, bool, error) {
	n, err := readNode(t, id)
	if err != nil {
		return nil, false, err
	}
	cp := &node{typ: n.typ, items: append([]item(nil), n.items...)}
	found := false
	if n.typ == pageLeaf {
		i, ok := cp.search(key)
		if !ok {
			return []item{{key: firstKey(cp), child: id}}, false, nil
		}
		t.freeValue(cp.items[i])
		cp.items = append(cp.items[:i], cp.items[i+1:]...)
		found = true
	} else {
		if len(cp.items) == 0 {
			return nil, false, &CorruptPageError{ID: id, Reason: "empty branch"}
		}
		slot := cp.childFor(key)
		repl, ok, rerr := t.remove(cp.items[slot].child, key)
		if rerr != nil {
			return nil, false, rerr
		}
		if !ok {
			return []item{{key: firstKey(cp), child: id}}, false, nil
		}
		found = true
		cp.items = append(cp.items[:slot], append(repl, cp.items[slot+1:]...)...)
	}
	t.freePage(id)
	if len(cp.items) == 0 {
		return nil, found, nil
	}
	return t.splitWriteFound(cp, found)
}

func (t *tx) splitWriteFound(n *node, found bool) ([]item, bool, error) {
	repl, err := t.splitWrite(n)
	return repl, found, err
}

func firstKey(n *node) []byte {
	if len(n.items) == 0 {
		return nil
	}
	return append([]byte(nil), n.items[0].key...)
}

// get looks a key up through the transaction's own view.
func (t *tx) get(key []byte) ([]byte, error) {
	return lookup(t, t.pageSize, t.m.root, key)
}

// dropSubtree removes every path reference to target from the tree —
// the recovery action for a quarantined page whose keys are unknown.
// The target page itself is never reused (its ID is quarantined by the
// caller); descendants of a dropped branch leak until compaction.
func (t *tx) dropSubtree(target uint64) (bool, error) {
	if t.m.root == 0 {
		return false, nil
	}
	if t.m.root == target {
		t.m.root = 0
		return true, nil
	}
	repl, dropped, err := t.dropWalk(t.m.root, target)
	if err != nil || !dropped {
		return dropped, err
	}
	switch len(repl) {
	case 0:
		t.m.root = 0
	case 1:
		t.m.root = repl[0].child
	default:
		root := &node{typ: pageBranch, items: repl}
		id, werr := t.writeNode(root)
		if werr != nil {
			return false, werr
		}
		t.m.root = id
	}
	return true, nil
}

func (t *tx) dropWalk(id, target uint64) ([]item, bool, error) {
	n, err := readNode(t, id)
	if err != nil {
		return nil, false, err
	}
	if n.typ == pageLeaf {
		return []item{{key: firstKey(n), child: id}}, false, nil
	}
	cp := &node{typ: pageBranch, items: append([]item(nil), n.items...)}
	changed := false
	out := make([]item, 0, len(cp.items)+2)
	for _, it := range cp.items {
		if it.child == target {
			changed = true
			continue
		}
		repl, dropped, derr := t.dropWalk(it.child, target)
		if derr != nil {
			// An unreadable sibling must not block dropping the target;
			// keep its entry untouched.
			var ce *CorruptPageError
			if errors.As(derr, &ce) {
				out = append(out, it)
				continue
			}
			return nil, false, derr
		}
		if dropped {
			changed = true
			out = append(out, repl...)
			continue
		}
		out = append(out, it)
	}
	if !changed {
		return []item{{key: firstKey(n), child: id}}, false, nil
	}
	cp.items = out
	t.freePage(id)
	if len(cp.items) == 0 {
		return nil, true, nil
	}
	repl, err := t.splitWrite(cp)
	return repl, true, err
}
