package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"facc/internal/faultinject"
	"facc/internal/obs"
)

func testEntry(n int) Entry {
	return Entry{
		Target:   "ffta",
		Function: "fft",
		AdapterC: fmt.Sprintf("/* adapter %d */\nvoid fft(float *data, int n) {}\n", n),
	}
}

func testKey(n int) string {
	return fmt.Sprintf("%02xdeadbeefdeadbeefdeadbeefdeadbeef", n)
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, err := Open(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(testKey(1)); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(testKey(1), testEntry(1)); err != nil {
		t.Fatal(err)
	}
	e, ok := s.Get(testKey(1))
	if !ok || e.AdapterC != testEntry(1).AdapterC || e.Key != testKey(1) {
		t.Fatalf("Get after Put: ok=%v e=%+v", ok, e)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A clean reopen serves the same entry: durability across restarts.
	s2, err := Open(dir, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	e, ok = s2.Get(testKey(1))
	if !ok || e.AdapterC != testEntry(1).AdapterC {
		t.Fatalf("Get after reopen: ok=%v e=%+v", ok, e)
	}
	c := reg.Counters()
	if c["store.hits"] != 1 || c["store.misses"] != 1 || c["store.writes"] != 1 {
		t.Fatalf("counters = %v", c)
	}
}

// TestStoreQuarantinesCorruptEntry is the torn-write half of the ISSUE
// acceptance: a damaged object must never be served — it is moved to
// quarantine/, the Get reports a miss, and a fresh Put heals the key.
func TestStoreQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, err := Open(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	key := testKey(2)
	if err := s.Put(key, testEntry(2)); err != nil {
		t.Fatal(err)
	}

	// Flip payload bytes without updating the checksum: a torn page.
	path := s.objectPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), "adapter 2", "adapter 666", 1)
	if tampered == string(data) {
		t.Fatal("tamper did not change the object")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}

	if e, ok := s.Get(key); ok {
		t.Fatalf("corrupt entry served: %+v", e)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt object still in place: %v", err)
	}
	q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine dir: entries=%d err=%v", len(q), err)
	}
	if got := reg.Counters()["store.corrupt_quarantined"]; got != 1 {
		t.Fatalf("corrupt_quarantined = %d, want 1", got)
	}

	// The key is healable: recompile-and-Put serves hits again.
	if err := s.Put(key, testEntry(2)); err != nil {
		t.Fatal(err)
	}
	if e, ok := s.Get(key); !ok || e.AdapterC != testEntry(2).AdapterC {
		t.Fatalf("Get after heal: ok=%v e=%+v", ok, e)
	}
}

// TestStoreGetRejectsWrongKey: an entry renamed onto another key's path
// (operator error, aliasing bug) must not be served for that key.
func TestStoreGetRejectsWrongKey(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(testKey(3), testEntry(3)); err != nil {
		t.Fatal(err)
	}
	other := s.objectPath(testKey(4))
	if err := os.MkdirAll(filepath.Dir(other), 0o755); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(s.objectPath(testKey(3)))
	if err := os.WriteFile(other, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if e, ok := s.Get(testKey(4)); ok {
		t.Fatalf("aliased entry served: %+v", e)
	}
}

// TestStoreWALRecovery simulates a crash mid-write: the WAL holds a
// begin with no commit and the object under that key is garbage. Open
// must quarantine the damaged object, keep committed neighbours intact,
// and reset the WAL.
func TestStoreWALRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	good, torn, ghost := testKey(5), testKey(6), testKey(7)
	if err := s.Put(good, testEntry(5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash scenario, staged by hand: a begin record without a commit,
	// a half-written (non-JSON) object under that key, plus a pending
	// key whose rename never happened, plus a torn final WAL line.
	wal, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(wal, "begin %s\n", torn)
	fmt.Fprintf(wal, "begin %s\n", ghost)
	fmt.Fprintf(wal, "begin %s", testKey(8)) // no newline: torn record
	wal.Close()
	tornPath := s.objectPath(torn)
	if err := os.MkdirAll(filepath.Dir(tornPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tornPath, []byte(`{"key":"`+torn+`","adapter_c":"void`), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	s2, err := Open(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get(torn); ok {
		t.Fatal("torn entry served after recovery")
	}
	if _, err := os.Stat(tornPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("torn object not quarantined")
	}
	if e, ok := s2.Get(good); !ok || e.AdapterC != testEntry(5).AdapterC {
		t.Fatalf("committed neighbour damaged by recovery: ok=%v", ok)
	}
	c := reg.Counters()
	if c["store.recovered_pending"] != 2 { // torn + ghost; the torn WAL line is dropped
		t.Fatalf("recovered_pending = %d, want 2", c["store.recovered_pending"])
	}
	if c["store.corrupt_quarantined"] != 1 {
		t.Fatalf("corrupt_quarantined = %d, want 1", c["store.corrupt_quarantined"])
	}
	wdata, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil || len(wdata) != 0 {
		t.Fatalf("WAL not reset after recovery: %q err=%v", wdata, err)
	}
}

// TestStoreBreakerDegradesOnIOErrors: consecutive storage failures open
// the I/O breaker; the store then degrades to pass-through (miss without
// touching the disk) instead of hammering a sick device, and recovers
// once the disk heals.
func TestStoreBreakerDegradesOnIOErrors(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, err := Open(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(testKey(9), testEntry(9)); err != nil {
		t.Fatal(err)
	}

	sick := true
	hookCalls := 0
	s.FaultHook = func(op, path string) error {
		hookCalls++
		if sick {
			return errors.New("injected: disk unplugged")
		}
		return nil
	}
	threshold := s.Breaker().Threshold
	for i := 0; i < threshold; i++ {
		if _, ok := s.Get(testKey(9)); ok {
			t.Fatalf("hit %d despite injected I/O error", i)
		}
	}
	if s.Breaker().State() != faultinject.Open {
		t.Fatalf("breaker state = %v, want open after %d failures", s.Breaker().State(), threshold)
	}
	callsAtOpen := hookCalls
	if _, ok := s.Get(testKey(9)); ok {
		t.Fatal("hit while breaker open")
	}
	if hookCalls != callsAtOpen {
		t.Fatal("open breaker still touched the disk")
	}
	if err := s.Put(testKey(10), testEntry(10)); err == nil {
		t.Fatal("Put succeeded while breaker open")
	}

	// Disk heals; after the cooldown a probe closes the circuit and the
	// cached entry is servable again.
	sick = false
	s.Breaker().Cooldown = 0
	if e, ok := s.Get(testKey(9)); !ok || e.AdapterC != testEntry(9).AdapterC {
		t.Fatalf("Get after heal: ok=%v", ok)
	}
	if s.Breaker().State() != faultinject.Closed {
		t.Fatalf("breaker state = %v, want closed", s.Breaker().State())
	}
	if reg.Counters()["store.breaker.rejected"] == 0 {
		t.Fatal("no rejected ops counted")
	}
}
