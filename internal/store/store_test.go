package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"facc/internal/faultinject"
	"facc/internal/obs"
)

func testEntry(n int) Entry {
	return Entry{
		Target:   "ffta",
		Function: "fft",
		Sig:      fmt.Sprintf("void fft%d(float *data, int n)", n%3),
		AdapterC: fmt.Sprintf("/* adapter %d */\nvoid fft(float *data, int n) {}\n", n),
	}
}

func testKey(n int) string {
	return fmt.Sprintf("%04xdeadbeefdeadbeefdeadbeefdead", n)
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, err := Open(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(testKey(1)); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(testKey(1), testEntry(1)); err != nil {
		t.Fatal(err)
	}
	e, ok := s.Get(testKey(1))
	if !ok || e.AdapterC != testEntry(1).AdapterC || e.Key != testKey(1) {
		t.Fatalf("Get after Put: ok=%v e=%+v", ok, e)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A clean reopen serves the same entry: durability across restarts.
	s2, err := Open(dir, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	e, ok = s2.Get(testKey(1))
	if !ok || e.AdapterC != testEntry(1).AdapterC {
		t.Fatalf("Get after reopen: ok=%v e=%+v", ok, e)
	}
	c := reg.Counters()
	if c["store.hits"] != 1 || c["store.misses"] != 1 || c["store.writes"] != 1 {
		t.Fatalf("counters = %v", c)
	}
}

// TestStoreManyEntries forces deep trees, splits, overflow chains and
// free-list reuse with a small page size, across deletes and a reopen.
func TestStoreManyEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenOptions(dir, obs.NewRegistry(), Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	const n = 150
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(i), testEntry(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i += 3 {
		if err := s.Delete(testKey(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if problems := s.Check(); len(problems) != 0 {
		t.Fatalf("Check: %v", problems)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenOptions(dir, obs.NewRegistry(), Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	want := 0
	for i := 0; i < n; i++ {
		e, ok := s2.Get(testKey(i))
		if i%3 == 0 {
			if ok {
				t.Fatalf("deleted key %d still served", i)
			}
			continue
		}
		want++
		if !ok || e.AdapterC != testEntry(i).AdapterC {
			t.Fatalf("entry %d after reopen: ok=%v", i, ok)
		}
	}
	if got := s2.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}

func TestStoreIndexes(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 9; i++ {
		e := testEntry(i)
		if i%2 == 0 {
			e.Target = "vfft"
		}
		if err := s.Put(testKey(i), e); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.ListByTarget("vfft")); got != 5 {
		t.Fatalf("ListByTarget(vfft) = %d, want 5", got)
	}
	if got := len(s.ListByTarget("ffta")); got != 4 {
		t.Fatalf("ListByTarget(ffta) = %d, want 4", got)
	}
	if got := len(s.ListByTarget("nope")); got != 0 {
		t.Fatalf("ListByTarget(nope) = %d, want 0", got)
	}
	// Three signatures cycle mod 3 over nine entries.
	if got := len(s.ListBySig(testEntry(0).Sig)); got != 3 {
		t.Fatalf("ListBySig = %d, want 3", got)
	}
	// Re-putting under a new target retires the old index entry.
	moved := testEntry(0)
	moved.Target = "ffta"
	if err := s.Put(testKey(0), moved); err != nil {
		t.Fatal(err)
	}
	if got := len(s.ListByTarget("vfft")); got != 4 {
		t.Fatalf("ListByTarget(vfft) after move = %d, want 4", got)
	}
	if got := len(s.ListByTarget("ffta")); got != 5 {
		t.Fatalf("ListByTarget(ffta) after move = %d, want 5", got)
	}
}

// corruptPageContaining flips bytes of the first page of store.db whose
// payload contains marker, simulating media damage, and returns its page
// number. The store must be closed.
func corruptPageContaining(t *testing.T, dir string, pageSize int, marker string) uint64 {
	t.Helper()
	path := filepath.Join(dir, "store.db")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The last occurrence lives in the newest (live) page; earlier ones
	// may be stale copy-on-write leftovers nobody reads.
	idx := bytes.LastIndex(data, []byte(marker))
	if idx < 0 {
		t.Fatalf("marker %q not found in store.db", marker)
	}
	data[idx] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return uint64(idx / pageSize)
}

// TestStoreQuarantinesCorruptPage: media damage under a cached entry
// must never be served — the page is quarantined, the Get misses, and a
// recompile heals the key.
func TestStoreQuarantinesCorruptPage(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(2)
	if err := s.Put(key, testEntry(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	corruptPageContaining(t, dir, defaultPage, "adapter 2")

	// Reopen WITHOUT the open-time verify so the damage is discovered on
	// the serving path.
	reg := obs.NewRegistry()
	s2, err := OpenOptions(dir, reg, Options{DisableVerifyOnOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if e, ok := s2.Get(key); ok {
		t.Fatalf("corrupt entry served: %+v", e)
	}
	// Deterministic miss, exactly one quarantine even when hit again.
	if _, ok := s2.Get(key); ok {
		t.Fatal("corrupt entry served on second Get")
	}
	if got := reg.Counters()["store.corrupt_quarantined"]; got != 1 {
		t.Fatalf("corrupt_quarantined = %d, want 1", got)
	}
	q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(q) == 0 {
		t.Fatalf("quarantine dir: entries=%d err=%v", len(q), err)
	}

	// The key is healable: recompile-and-Put serves hits again.
	if err := s2.Put(key, testEntry(2)); err != nil {
		t.Fatal(err)
	}
	if e, ok := s2.Get(key); !ok || e.AdapterC != testEntry(2).AdapterC {
		t.Fatalf("Get after heal: ok=%v e=%+v", ok, e)
	}
}

// TestStoreVerifyOnOpenQuarantines: the same damage found at open time
// is quarantined before the store serves, and neighbours survive.
func TestStoreVerifyOnOpenQuarantines(t *testing.T) {
	dir := t.TempDir()
	// Small pages: each entry's value spills to its own overflow chain,
	// so damage is scoped to one entry.
	s, err := OpenOptions(dir, obs.NewRegistry(), Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 14; i++ {
		if err := s.Put(testKey(i), testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	corruptPageContaining(t, dir, 512, "adapter 11")

	reg := obs.NewRegistry()
	s2, err := OpenOptions(dir, reg, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if reg.Counters()["store.corrupt_quarantined"] == 0 {
		t.Fatal("open-time verify quarantined nothing")
	}
	if problems := s2.Check(); len(problems) != 0 {
		t.Fatalf("store inconsistent after verify: %v", problems)
	}
	if _, ok := s2.Get(testKey(11)); ok {
		t.Fatal("damaged entry served after verify")
	}
	for _, i := range []int{10, 12, 13} {
		if e, ok := s2.Get(testKey(i)); !ok || e.AdapterC != testEntry(i).AdapterC {
			t.Fatalf("neighbour %d damaged by recovery: ok=%v", i, ok)
		}
	}
}

// TestStoreEntryChecksumDefense: a value that decodes as JSON but fails
// the entry's own checksum (page checksums bypassed — a logic bug or a
// hostile writer) still misses and quarantines.
func TestStoreEntryChecksumDefense(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, err := Open(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	key := testKey(20)
	// Inject a value whose embedded checksum is wrong, through the raw
	// commit path (bypassing Put, which would fix the checksum).
	bad := []byte(`{"key":"` + key + `","adapter_c":"void evil(){}","checksum":"00"}`)
	if err := s.commitDirect(&storeOp{kind: opPut, key: key, value: bad}); err != nil {
		t.Fatal(err)
	}
	if e, ok := s.Get(key); ok {
		t.Fatalf("entry with bad checksum served: %+v", e)
	}
	if got := reg.Counters()["store.corrupt_quarantined"]; got != 1 {
		t.Fatalf("corrupt_quarantined = %d, want 1", got)
	}
}

// TestStoreMVCCReadersDontBlockCommit is the ISSUE acceptance: snapshot
// reads complete while a commit is held in flight at its fsync. Run
// under -race.
func TestStoreMVCCReadersDontBlockCommit(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(testKey(30), testEntry(30)); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.FaultHook = func(op, path string) error {
		if op == "db_sync" {
			once.Do(func() {
				close(entered)
				<-release
			})
		}
		return nil
	}
	putDone := make(chan error, 1)
	go func() { putDone <- s.Put(testKey(31), testEntry(31)) }()
	<-entered // the commit is now parked mid-checkpoint

	// Readers must finish while the writer is parked: hits on the old
	// snapshot, misses for the in-flight key.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if e, ok := s.Get(testKey(30)); !ok || e.AdapterC != testEntry(30).AdapterC {
					t.Errorf("snapshot read failed during commit: ok=%v", ok)
					return
				}
			}
		}()
	}
	readsDone := make(chan struct{})
	go func() { wg.Wait(); close(readsDone) }()
	select {
	case <-readsDone:
	case <-time.After(10 * time.Second):
		t.Fatal("snapshot reads blocked behind an in-flight commit")
	}
	if _, ok := s.Get(testKey(31)); ok {
		t.Fatal("uncommitted entry visible to a snapshot read")
	}

	close(release)
	if err := <-putDone; err != nil {
		t.Fatalf("parked Put failed: %v", err)
	}
	if e, ok := s.Get(testKey(31)); !ok || e.AdapterC != testEntry(31).AdapterC {
		t.Fatalf("entry invisible after commit: ok=%v", ok)
	}
}

func TestStoreGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, err := Open(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Park the first commit so the rest of the burst queues behind it.
	hold := make(chan struct{})
	var once sync.Once
	s.FaultHook = func(op, path string) error {
		if op == "wal_append" {
			once.Do(func() { <-hold })
		}
		return nil
	}
	var wg sync.WaitGroup
	const n = 24
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.Put(testKey(40+i), testEntry(40+i)); err != nil {
				t.Errorf("put %d: %v", i, err)
			}
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let the burst enqueue
	close(hold)
	wg.Wait()
	c := reg.Counters()
	if c["store.commits"] != n {
		t.Fatalf("commits = %d, want %d", c["store.commits"], n)
	}
	if c["store.commit_batches"] >= n {
		t.Fatalf("batches = %d: group commit never coalesced %d puts", c["store.commit_batches"], n)
	}
}

func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, err := OpenOptions(dir, reg, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		if err := s.Put(testKey(i), testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 70; i++ {
		if err := s.Delete(testKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats().Pages
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats().Pages
	if after >= before {
		t.Fatalf("compaction did not shrink the file: %d -> %d pages", before, after)
	}
	if reg.Counters()["store.compactions"] != 1 {
		t.Fatal("no compaction counted")
	}
	for i := 70; i < 80; i++ {
		if e, ok := s.Get(testKey(i)); !ok || e.AdapterC != testEntry(i).AdapterC {
			t.Fatalf("entry %d lost by compaction: ok=%v", i, ok)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenOptions(dir, obs.NewRegistry(), Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 10 {
		t.Fatalf("Len after compaction+reopen = %d, want 10", got)
	}
}

// TestStoreSnapshotSurvivesCompaction: a pinned snapshot keeps reading
// the retired file generation after compaction replaces it.
func TestStoreSnapshotSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenOptions(dir, obs.NewRegistry(), Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 20; i++ {
		if err := s.Put(testKey(i), testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	sp := s.acquireSnapshot()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// The snapshot still reads the old generation.
	val, err := lookup(sp, s.opts.PageSize, sp.m.root, primaryKey(testKey(5)))
	if err != nil || !bytes.Contains(val, []byte("adapter 5")) {
		t.Fatalf("snapshot read after compaction: err=%v", err)
	}
	sp.release()
	if e, ok := s.Get(testKey(5)); !ok || e.AdapterC != testEntry(5).AdapterC {
		t.Fatalf("entry lost across compaction: ok=%v", ok)
	}
}

func TestStoreQuarantineGCBounds(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, err := OpenOptions(dir, reg, Options{QuarantineMaxFiles: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 30; i++ {
		s.writeQuarantineFile(fmt.Sprintf("page-%d.bin", i), []byte("evidence"))
	}
	q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil {
		t.Fatal(err)
	}
	if len(q) > 5 {
		t.Fatalf("quarantine dir holds %d files, bound is 5", len(q))
	}
	if g := reg.Gauges()["store.quarantined"]; g > 5 {
		t.Fatalf("store.quarantined gauge = %v, want <= 5", g)
	}

	// Age-based GC: a file backdated past the cutoff is pruned.
	old := filepath.Join(dir, "quarantine", "ancient.bin")
	if err := os.WriteFile(old, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	past := time.Now().Add(-30 * 24 * time.Hour)
	os.Chtimes(old, past, past)
	s.gcQuarantine()
	if _, err := os.Stat(old); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("aged-out quarantine evidence not pruned")
	}
}

// TestStoreBreakerDegradesOnIOErrors: consecutive storage failures open
// the I/O breaker; the store then degrades to pass-through (miss without
// touching the disk) instead of hammering a sick device, and recovers
// once the disk heals.
func TestStoreBreakerDegradesOnIOErrors(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, err := Open(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(testKey(9), testEntry(9)); err != nil {
		t.Fatal(err)
	}

	sick := true
	hookCalls := 0
	var mu sync.Mutex
	s.FaultHook = func(op, path string) error {
		mu.Lock()
		defer mu.Unlock()
		hookCalls++
		if sick {
			return errors.New("injected: disk unplugged")
		}
		return nil
	}
	threshold := s.Breaker().Threshold
	for i := 0; i < threshold; i++ {
		if _, ok := s.Get(testKey(9)); ok {
			t.Fatalf("hit %d despite injected I/O error", i)
		}
	}
	if s.Breaker().State() != faultinject.Open {
		t.Fatalf("breaker state = %v, want open after %d failures", s.Breaker().State(), threshold)
	}
	mu.Lock()
	callsAtOpen := hookCalls
	mu.Unlock()
	if _, ok := s.Get(testKey(9)); ok {
		t.Fatal("hit while breaker open")
	}
	mu.Lock()
	stillTouching := hookCalls != callsAtOpen
	mu.Unlock()
	if stillTouching {
		t.Fatal("open breaker still touched the disk")
	}
	if err := s.Put(testKey(10), testEntry(10)); err == nil {
		t.Fatal("Put succeeded while breaker open")
	}

	// Disk heals; after the cooldown a probe closes the circuit and the
	// cached entry is servable again.
	mu.Lock()
	sick = false
	mu.Unlock()
	s.Breaker().Cooldown = 0
	if e, ok := s.Get(testKey(9)); !ok || e.AdapterC != testEntry(9).AdapterC {
		t.Fatalf("Get after heal: ok=%v", ok)
	}
	if s.Breaker().State() != faultinject.Closed {
		t.Fatalf("breaker state = %v, want closed", s.Breaker().State())
	}
	if reg.Counters()["store.breaker.rejected"] == 0 {
		t.Fatal("no rejected ops counted")
	}
}

// ---------------------------------------------------------------------
// Crash mini-matrix
// ---------------------------------------------------------------------

// matrixExpect tracks what the workload has durably acknowledged: the
// entries whose Put returned nil (must survive any later crash) and the
// keys whose Delete returned nil (must stay gone). The one operation in
// flight when the crash fired is recorded too: it may or may not have
// reached its durability point, so both outcomes are legal for its key.
type matrixExpect struct {
	present map[string]Entry
	absent  map[string]bool

	pendingKey    string // key of the op interrupted by the crash ("" = none)
	pendingEntry  Entry  // the value it was writing (puts)
	pendingDelete bool
}

// matrixWorkload drives a deterministic write mix — inserts, a replace,
// a delete, a compaction — through the given VFS until it finishes or
// the planned crash fires. It returns what had been acknowledged by
// then.
func matrixWorkload(dir string, vfs faultinject.VFS) (*matrixExpect, error) {
	exp := &matrixExpect{present: map[string]Entry{}, absent: map[string]bool{}}
	st, err := OpenOptions(dir, obs.NewRegistry(), Options{
		PageSize: 512, VFS: vfs, AutoCompactPages: -1, DisableVerifyOnOpen: true,
	})
	if err != nil {
		return exp, err
	}
	defer st.Close()
	step := func(key string, e Entry, put bool) error {
		if put {
			if err := st.Put(key, e); err != nil {
				exp.pendingKey, exp.pendingEntry = key, e
				return err
			}
			exp.present[key] = e
			delete(exp.absent, key)
			return nil
		}
		if err := st.Delete(key); err != nil {
			exp.pendingKey, exp.pendingDelete = key, true
			return err
		}
		delete(exp.present, key)
		exp.absent[key] = true
		return nil
	}
	for i := 0; i < 4; i++ {
		if err := step(testKey(i), testEntry(i), true); err != nil {
			return exp, err
		}
	}
	if err := step(testKey(1), Entry{}, false); err != nil { // delete
		return exp, err
	}
	repl := testEntry(2)
	repl.Target = "vfft" // replace with an index move
	if err := step(testKey(2), repl, true); err != nil {
		return exp, err
	}
	if err := st.Compact(); err != nil {
		return exp, err
	}
	if err := step(testKey(5), testEntry(5), true); err != nil {
		return exp, err
	}
	return exp, nil
}

// TestStoreCrashMatrix is the package-level crash matrix: the workload
// is probed once to enumerate every durable operation, then replayed
// with a simulated power loss at each site in each damage mode. After
// every crash the store must reopen consistent, serve every
// acknowledged entry byte-identically, keep acknowledged deletes
// deleted, and never serve damaged data. The full-system matrix (with
// recompile baselines) lives in internal/eval.
func TestStoreCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is not -short")
	}
	probe := faultinject.NewCrashVFS(nil, faultinject.CrashPlan{})
	if _, err := matrixWorkload(t.TempDir(), probe); err != nil {
		t.Fatalf("probe run failed: %v", err)
	}
	sites := probe.Sites()
	if len(sites) < 30 {
		t.Fatalf("only %d crash sites enumerated, want >= 30", len(sites))
	}
	ops := faultinject.SiteOps(sites)
	for _, op := range []string{"write", "sync", "truncate", "rename"} {
		if ops[op] == 0 {
			t.Fatalf("no %q crash sites in the workload (ops=%v)", op, ops)
		}
	}

	for _, site := range sites {
		for _, mode := range faultinject.CrashModes {
			site, mode := site, mode
			t.Run(fmt.Sprintf("site%03d_%s_%s", site.Site, site.Op, mode), func(t *testing.T) {
				dir := t.TempDir()
				vfs := faultinject.NewCrashVFS(nil, faultinject.CrashPlan{Site: site.Site, Mode: mode})
				exp, err := matrixWorkload(dir, vfs)
				if !vfs.Crashed() {
					t.Fatalf("plan site %d never fired (err=%v)", site.Site, err)
				}

				// Reboot: recover on the real disk state the crash left.
				reg := obs.NewRegistry()
				st, err := OpenOptions(dir, reg, Options{PageSize: 512})
				if err != nil {
					t.Fatalf("reopen after crash: %v", err)
				}
				defer st.Close()
				if problems := st.Check(); len(problems) != 0 {
					t.Fatalf("store inconsistent after recovery: %v", problems)
				}
				sameEntry := func(a, b Entry) bool {
					return a.AdapterC == b.AdapterC && a.Target == b.Target && a.Sig == b.Sig
				}
				for key, want := range exp.present {
					e, ok := st.Get(key)
					if key == exp.pendingKey {
						// The interrupted op targeted this key: the old
						// acked value, the in-flight outcome, or (for an
						// in-flight delete) absence are all legal — but
						// nothing else ever is.
						switch {
						case !ok && exp.pendingDelete:
						case !ok:
							t.Fatalf("acknowledged entry %s lost", key)
						case sameEntry(e, want):
						case !exp.pendingDelete && sameEntry(e, exp.pendingEntry):
						default:
							t.Fatalf("entry %s holds a value never written:\n got %+v", key, e)
						}
						continue
					}
					if !ok {
						t.Fatalf("acknowledged entry %s lost", key)
					}
					if !sameEntry(e, want) {
						t.Fatalf("acknowledged entry %s differs after recovery:\n got %+v\nwant %+v", key, e, want)
					}
				}
				for key := range exp.absent {
					e, ok := st.Get(key)
					if !ok {
						continue
					}
					if key == exp.pendingKey && !exp.pendingDelete && sameEntry(e, exp.pendingEntry) {
						continue // the interrupted re-put durably landed
					}
					t.Fatalf("acknowledged delete of %s resurrected", key)
				}
				if exp.pendingKey != "" {
					if _, tracked := exp.present[exp.pendingKey]; !tracked && !exp.absent[exp.pendingKey] {
						// A first-time put interrupted: absent or fully
						// intact are the only legal outcomes.
						if e, ok := st.Get(exp.pendingKey); ok && !sameEntry(e, exp.pendingEntry) {
							t.Fatalf("interrupted put of %s half-applied: %+v", exp.pendingKey, e)
						}
					}
				}
				// Unacknowledged keys may be present (the crash hit after
				// the durability point) — but then they must be intact.
				for i := 0; i < 8; i++ {
					key := testKey(i)
					if _, tracked := exp.present[key]; tracked || exp.absent[key] {
						continue
					}
					if e, ok := st.Get(key); ok {
						if !strings.Contains(e.AdapterC, fmt.Sprintf("adapter %d", i)) {
							t.Fatalf("unacknowledged entry %s served damaged: %+v", key, e)
						}
					}
				}
			})
		}
	}
}
