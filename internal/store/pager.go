package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"

	"facc/internal/faultinject"
)

// The store database is a single file of fixed-size pages. Every page —
// tree nodes, overflow chains, freelist, meta — carries the same header,
// so a torn or bit-flipped sector is detected the moment it is read:
//
//	[0:4)    crc32 (Castagnoli) over bytes [4:pageSize)
//	[4:6)    page type (leaf, branch, overflow, freelist, meta)
//	[6:8)    nitems (overflow pages: payload byte length)
//	[8:16)   pageID — the page's own number, catching misdirected writes
//	[16:24)  txid of the transaction that wrote the page
//	[24:32)  next page (overflow and freelist chains)
//	[32:40)  reserved
//
// Pages 0 and 1 are alternating meta slots: a commit at txid T writes
// slot T%2, so one valid meta always survives a torn meta write. The
// meta payload names the tree root, the file length in pages and the
// head of the persisted freelist chain.
const (
	pageHeaderSize = 40
	minPageSize    = 256
	defaultPage    = 4096

	pageLeaf     = 1
	pageBranch   = 2
	pageOverflow = 3
	pageFreelist = 4
	pageMeta     = 5

	metaMagic   = "FACCBT01"
	metaVersion = 1
	metaSlots   = 2
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// meta is the decoded meta page: the committed identity of the database.
type meta struct {
	txid     uint64
	root     uint64 // 0 = empty tree
	npages   uint64 // file length in pages (including the two meta slots)
	freeHead uint64 // first page of the persisted freelist chain (0 = none)
}

// CorruptPageError reports a page whose checksum, self-ID or type failed
// verification — a torn write, a bit flip, or a misdirected sector. The
// store quarantines the bytes and drops the page from the tree; the
// entries it held become misses, never wrong adapters.
type CorruptPageError struct {
	ID     uint64
	Reason string
	Data   []byte
}

func (e *CorruptPageError) Error() string {
	return fmt.Sprintf("store: corrupt page %d: %s", e.ID, e.Reason)
}

// pager reads and writes whole pages of one database file generation.
// Compaction retires a pager and installs a fresh one over the new file;
// snapshots pinned to the old generation keep reading its (renamed-over
// but still-open) file handle until released.
type pager struct {
	f        faultinject.File
	pageSize int

	mu       sync.Mutex
	cache    map[uint64][]byte
	cap      int
	poisoned map[uint64]bool // quarantined pages: never served, never reused

	refs    atomic.Int64
	retired atomic.Bool
}

func newPager(f faultinject.File, pageSize, cachePages int) *pager {
	if cachePages <= 0 {
		cachePages = 512
	}
	p := &pager{
		f: f, pageSize: pageSize,
		cache: make(map[uint64][]byte), cap: cachePages,
		poisoned: make(map[uint64]bool),
	}
	p.refs.Store(1) // the store's own reference
	return p
}

// markPoisoned quarantines a page for this file generation: every future
// read fails deterministically. Returns false when already poisoned, so
// concurrent readers hitting the same damage quarantine it exactly once.
func (p *pager) markPoisoned(id uint64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.poisoned[id] {
		return false
	}
	p.poisoned[id] = true
	delete(p.cache, id)
	return true
}

func (p *pager) isPoisoned(id uint64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.poisoned[id]
}

func (p *pager) poisonedCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.poisoned)
}

func (p *pager) acquire() { p.refs.Add(1) }

// release drops one reference; the file closes when a retired pager's
// last snapshot releases it.
func (p *pager) release() {
	if p.refs.Add(-1) == 0 && p.retired.Load() {
		p.f.Close()
	}
}

// retire marks the pager superseded (by compaction or Close); the file
// handle stays open for any snapshots still reading it.
func (p *pager) retire() {
	p.retired.Store(true)
	p.release() // drop the store's own reference
}

// read returns the verified contents of page id. The returned slice is
// shared (cached) — callers must not mutate it.
func (p *pager) read(id uint64) ([]byte, error) {
	p.mu.Lock()
	if p.poisoned[id] {
		p.mu.Unlock()
		return nil, &CorruptPageError{ID: id, Reason: "page is quarantined"}
	}
	if d, ok := p.cache[id]; ok {
		p.mu.Unlock()
		return d, nil
	}
	p.mu.Unlock()

	buf := make([]byte, p.pageSize)
	if _, err := p.f.ReadAt(buf, int64(id)*int64(p.pageSize)); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, &CorruptPageError{ID: id, Reason: "page lies past the end of the file"}
		}
		return nil, err
	}
	if err := verifyPage(buf, id); err != nil {
		return nil, err
	}
	p.mu.Lock()
	if len(p.cache) >= p.cap {
		for k := range p.cache {
			delete(p.cache, k)
			break
		}
	}
	p.cache[id] = buf
	p.mu.Unlock()
	return buf, nil
}

// verifyPage checks a page's checksum and self-ID.
func verifyPage(buf []byte, id uint64) error {
	if got, want := binary.LittleEndian.Uint32(buf[0:4]), crc32.Checksum(buf[4:], castagnoli); got != want {
		return &CorruptPageError{ID: id, Reason: fmt.Sprintf("checksum %08x != %08x", got, want), Data: buf}
	}
	if self := binary.LittleEndian.Uint64(buf[8:16]); self != id {
		return &CorruptPageError{ID: id, Reason: fmt.Sprintf("self-ID %d (misdirected write)", self), Data: buf}
	}
	typ := binary.LittleEndian.Uint16(buf[4:6])
	if typ < pageLeaf || typ > pageMeta {
		return &CorruptPageError{ID: id, Reason: fmt.Sprintf("unknown type %d", typ), Data: buf}
	}
	return nil
}

// write stores a finished page image to the file and refreshes the cache
// (so readers see committed pages without re-reading the disk).
func (p *pager) write(id uint64, buf []byte) error {
	if _, err := p.f.WriteAt(buf, int64(id)*int64(p.pageSize)); err != nil {
		return err
	}
	p.mu.Lock()
	if len(p.cache) >= p.cap {
		for k := range p.cache {
			delete(p.cache, k)
			break
		}
	}
	p.cache[id] = buf
	p.mu.Unlock()
	return nil
}

// evict removes a page from the cache before its ID is rewritten with
// new content (page reuse from the freelist).
func (p *pager) evict(id uint64) {
	p.mu.Lock()
	delete(p.cache, id)
	p.mu.Unlock()
}

func (p *pager) sync() error { return p.f.Sync() }

// sealPage finishes a page image: stamps the header fields and checksum.
func sealPage(buf []byte, typ uint16, nitems int, id, txid, next uint64) {
	binary.LittleEndian.PutUint16(buf[4:6], typ)
	binary.LittleEndian.PutUint16(buf[6:8], uint16(nitems))
	binary.LittleEndian.PutUint64(buf[8:16], id)
	binary.LittleEndian.PutUint64(buf[16:24], txid)
	binary.LittleEndian.PutUint64(buf[24:32], next)
	binary.LittleEndian.PutUint64(buf[32:40], 0)
	binary.LittleEndian.PutUint32(buf[0:4], crc32.Checksum(buf[4:], castagnoli))
}

// encodeMeta builds a meta page image for the given slot.
func encodeMeta(m meta, slot uint64, pageSize int) []byte {
	buf := make([]byte, pageSize)
	pl := buf[pageHeaderSize:]
	copy(pl[0:8], metaMagic)
	binary.LittleEndian.PutUint32(pl[8:12], metaVersion)
	binary.LittleEndian.PutUint32(pl[12:16], uint32(pageSize))
	binary.LittleEndian.PutUint64(pl[16:24], m.root)
	binary.LittleEndian.PutUint64(pl[24:32], m.npages)
	binary.LittleEndian.PutUint64(pl[32:40], m.freeHead)
	sealPage(buf, pageMeta, 0, slot, m.txid, 0)
	return buf
}

// decodeMeta validates and decodes one meta slot.
func decodeMeta(buf []byte, slot uint64, pageSize int) (meta, error) {
	if err := verifyPage(buf, slot); err != nil {
		return meta{}, err
	}
	if typ := binary.LittleEndian.Uint16(buf[4:6]); typ != pageMeta {
		return meta{}, fmt.Errorf("store: meta slot %d has page type %d", slot, typ)
	}
	pl := buf[pageHeaderSize:]
	if string(pl[0:8]) != metaMagic {
		return meta{}, fmt.Errorf("store: meta slot %d: bad magic %q", slot, pl[0:8])
	}
	if v := binary.LittleEndian.Uint32(pl[8:12]); v != metaVersion {
		return meta{}, fmt.Errorf("store: meta slot %d: version %d (want %d)", slot, v, metaVersion)
	}
	if ps := binary.LittleEndian.Uint32(pl[12:16]); int(ps) != pageSize {
		return meta{}, fmt.Errorf("store: meta slot %d: page size %d (store opened with %d)", slot, ps, pageSize)
	}
	m := meta{
		txid:     binary.LittleEndian.Uint64(buf[16:24]),
		root:     binary.LittleEndian.Uint64(pl[16:24]),
		npages:   binary.LittleEndian.Uint64(pl[24:32]),
		freeHead: binary.LittleEndian.Uint64(pl[32:40]),
	}
	if m.npages < metaSlots {
		return meta{}, fmt.Errorf("store: meta slot %d: npages %d < %d", slot, m.npages, metaSlots)
	}
	if m.root != 0 && m.root >= m.npages {
		return meta{}, fmt.Errorf("store: meta slot %d: root %d outside %d pages", slot, m.root, m.npages)
	}
	if m.freeHead != 0 && m.freeHead >= m.npages {
		return meta{}, fmt.Errorf("store: meta slot %d: freelist head %d outside %d pages", slot, m.freeHead, m.npages)
	}
	return m, nil
}

// encodeFreelist writes the free-page set into a chain of freelist
// pages, allocating pages via alloc. Returns the head (0 when empty) and
// the chain's own page IDs.
func encodeFreelist(ids []uint64, pageSize int, txid uint64, alloc func() uint64) (head uint64, chain []uint64, pages map[uint64][]byte) {
	pages = map[uint64][]byte{}
	perPage := (pageSize - pageHeaderSize) / 8
	if len(ids) == 0 {
		return 0, nil, pages
	}
	// Allocate the chain first so chunks stay stable.
	n := (len(ids) + perPage - 1) / perPage
	chain = make([]uint64, n)
	for i := range chain {
		chain[i] = alloc()
	}
	for i := 0; i < n; i++ {
		lo, hi := i*perPage, (i+1)*perPage
		if hi > len(ids) {
			hi = len(ids)
		}
		buf := make([]byte, pageSize)
		pl := buf[pageHeaderSize:]
		for j, id := range ids[lo:hi] {
			binary.LittleEndian.PutUint64(pl[j*8:j*8+8], id)
		}
		next := uint64(0)
		if i+1 < n {
			next = chain[i+1]
		}
		sealPage(buf, pageFreelist, hi-lo, chain[i], txid, next)
		pages[chain[i]] = buf
	}
	return chain[0], chain, pages
}

// decodeFreelist walks the persisted freelist chain, returning the free
// IDs and the chain's own pages (freed by the next commit).
func decodeFreelist(p *pager, head uint64) (ids, chain []uint64, err error) {
	seen := map[uint64]bool{}
	for id := head; id != 0; {
		if seen[id] {
			return nil, nil, fmt.Errorf("store: freelist chain cycles at page %d", id)
		}
		seen[id] = true
		buf, rerr := p.read(id)
		if rerr != nil {
			return nil, nil, rerr
		}
		if typ := binary.LittleEndian.Uint16(buf[4:6]); typ != pageFreelist {
			return nil, nil, &CorruptPageError{ID: id, Reason: fmt.Sprintf("freelist chain points at type-%d page", typ), Data: buf}
		}
		n := int(binary.LittleEndian.Uint16(buf[6:8]))
		if n > (p.pageSize-pageHeaderSize)/8 {
			return nil, nil, &CorruptPageError{ID: id, Reason: fmt.Sprintf("freelist count %d overflows page", n), Data: buf}
		}
		chain = append(chain, id)
		pl := buf[pageHeaderSize:]
		for j := 0; j < n; j++ {
			ids = append(ids, binary.LittleEndian.Uint64(pl[j*8:j*8+8]))
		}
		id = binary.LittleEndian.Uint64(buf[24:32])
	}
	return ids, chain, nil
}
