package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// fuzzPageSize keeps fuzz inputs small while exercising every format
// path (header, meta payload, node items, WAL records).
const fuzzPageSize = 256

// fuzzSeedCorpus builds one valid specimen of every on-disk structure;
// the fuzzer mutates them into hostile neighbours.
func fuzzSeedCorpus() [][]byte {
	var seeds [][]byte

	// A sealed leaf with an inline and a spilled item.
	leaf := &node{typ: pageLeaf, items: []item{
		{key: []byte("o\x00aaaa"), val: []byte(`{"key":"aaaa"}`)},
		{key: []byte("o\x00bbbb"), ovfl: 7, ovflLen: 300, ovflCRC: 0xDEADBEEF},
	}}
	if buf, err := leaf.encode(fuzzPageSize, 3, 9); err == nil {
		seeds = append(seeds, buf)
	}
	// A sealed branch.
	branch := &node{typ: pageBranch, items: []item{
		{key: []byte("o\x00aaaa"), child: 3},
		{key: []byte("t\x00ffta"), child: 4},
	}}
	if buf, err := branch.encode(fuzzPageSize, 5, 9); err == nil {
		seeds = append(seeds, buf)
	}
	// A meta page.
	seeds = append(seeds, encodeMeta(meta{txid: 12, root: 5, npages: 9, freeHead: 8}, 0, fuzzPageSize))
	// A freelist page.
	_, _, fl := encodeFreelist([]uint64{3, 4, 6}, fuzzPageSize, 12, func() uint64 { return 8 })
	for _, buf := range fl {
		seeds = append(seeds, buf)
	}
	// An overflow page.
	ov := make([]byte, fuzzPageSize)
	copy(ov[pageHeaderSize:], []byte("spilled adapter bytes"))
	sealPage(ov, pageOverflow, 21, 7, 9, 0)
	seeds = append(seeds, ov)
	// A WAL record wrapping two of the pages above.
	pages := map[uint64][]byte{}
	if len(seeds) >= 2 {
		pages[3] = seeds[0]
		pages[5] = seeds[1]
	}
	seeds = append(seeds, encodeWALRecord(meta{txid: 13, root: 5, npages: 9}, pages, fuzzPageSize))
	// A truncated record and raw garbage.
	if n := len(seeds); n > 0 {
		last := seeds[n-1]
		seeds = append(seeds, last[:len(last)/2])
	}
	seeds = append(seeds, []byte("FWAL\xff\xff\xff\xff not a record"))
	return seeds
}

// FuzzStoreDecode throws hostile bytes at every on-disk decoder the
// store trusts after a crash: page verification, node decoding, meta
// decoding, and WAL record parsing. The contract under fuzzing is the
// quarantine contract: hostile input yields errors (corrupt-page or
// parse errors), never panics, and never a silently-accepted structure
// that re-encodes differently (a wrong adapter in disguise).
func FuzzStoreDecode(f *testing.F) {
	for _, seed := range fuzzSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Page-shaped view: pad or trim to one page.
		page := make([]byte, fuzzPageSize)
		copy(page, data)

		for _, id := range []uint64{0, 3} {
			if err := verifyPage(page, id); err == nil {
				// A page that passes verification must decode cleanly by
				// type — structural garbage behind a valid checksum would
				// mean the checksum covers too little.
				switch typ := binary.LittleEndian.Uint16(page[4:6]); typ {
				case pageLeaf, pageBranch:
					n, derr := decodeNode(page, id)
					if derr == nil {
						// Round-trip: re-encoding a decoded node must
						// reproduce content-identical items.
						if buf, eerr := n.encode(fuzzPageSize, id, binary.LittleEndian.Uint64(page[16:24])); eerr == nil {
							n2, derr2 := decodeNode(buf, id)
							if derr2 != nil {
								t.Fatalf("re-encoded node fails decode: %v", derr2)
							}
							if len(n2.items) != len(n.items) {
								t.Fatalf("round-trip changed item count: %d != %d", len(n2.items), len(n.items))
							}
							for i := range n.items {
								if !bytes.Equal(n.items[i].key, n2.items[i].key) || !bytes.Equal(n.items[i].val, n2.items[i].val) {
									t.Fatalf("round-trip changed item %d", i)
								}
							}
						}
					}
				case pageMeta:
					decodeMeta(page, id, fuzzPageSize)
				}
			}
		}

		// WAL-shaped view: arbitrary length.
		recs, validLen, _ := decodeWALRecords(data, fuzzPageSize)
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("wal validLen %d out of range [0,%d]", validLen, len(data))
		}
		for _, rec := range recs {
			// Every page inside an accepted record must itself verify —
			// replay writes these bytes straight into the database.
			for id, img := range rec.pages {
				if err := verifyPage(img, id); err != nil {
					t.Fatalf("accepted WAL record carries unverified page: %v", err)
				}
			}
		}

		// Entry-shaped view: the JSON value layer rejects hostile bytes
		// via checksum, never by panicking.
		var e Entry
		if json.Unmarshal(data, &e) == nil {
			_ = e.Checksum == e.checksum()
		}
	})
}

// TestGenerateFuzzCorpus writes the seed corpus into testdata so the
// committed corpus and the in-code seeds never drift. It only rewrites
// files when FACC_GEN_CORPUS=1; otherwise it verifies they exist.
func TestGenerateFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzStoreDecode")
	seeds := fuzzSeedCorpus()
	if os.Getenv("FACC_GEN_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			body := []byte("go test fuzz v1\n[]byte(" + quoteBytes(seed) + ")\n")
			name := filepath.Join(dir, fmtSeedName(i))
			if err := os.WriteFile(name, body, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	des, err := os.ReadDir(dir)
	if err != nil || len(des) < len(seeds) {
		t.Fatalf("committed fuzz corpus missing (%d files, want >= %d): regenerate with FACC_GEN_CORPUS=1 (err=%v)", len(des), len(seeds), err)
	}
}

func fmtSeedName(i int) string {
	const hexdigits = "0123456789abcdef"
	return "seed-" + string([]byte{hexdigits[i/16%16], hexdigits[i%16]})
}

// quoteBytes renders data as a Go double-quoted string literal, the
// format `go test fuzz v1` corpus files require.
func quoteBytes(data []byte) string {
	var b bytes.Buffer
	b.WriteByte('"')
	for _, c := range data {
		switch {
		case c == '"':
			b.WriteString(`\"`)
		case c == '\\':
			b.WriteString(`\\`)
		case c >= 0x20 && c < 0x7f:
			b.WriteByte(c)
		default:
			const hexdigits = "0123456789abcdef"
			b.WriteString(`\x`)
			b.WriteByte(hexdigits[c>>4])
			b.WriteByte(hexdigits[c&0xf])
		}
	}
	b.WriteByte('"')
	return b.String()
}
