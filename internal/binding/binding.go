// Package binding implements FACC's binding synthesis (paper §5.1): it
// enumerates every plausible mapping from user-code variables to
// accelerator API parameters, pruned by type constraints and range/
// single-read heuristics. The surviving candidates are handed to the
// generate-and-test engine, which eliminates all but one by IO fuzzing.
package binding

import (
	"fmt"
	"sort"
	"strings"

	"facc/internal/accel"
	"facc/internal/minic"
	"facc/internal/obs"
)

// ComplexLayout describes how user code represents an array of complex
// samples — the heart of the data-mismatch problem.
type ComplexLayout int

// Complex layouts.
const (
	LayoutC99    ComplexLayout = iota // T _Complex array
	LayoutStruct                      // array of {re, im} structs
	LayoutSplit                       // two parallel real arrays
)

func (l ComplexLayout) String() string {
	switch l {
	case LayoutC99:
		return "c99"
	case LayoutStruct:
		return "struct"
	case LayoutSplit:
		return "split"
	default:
		return fmt.Sprintf("layout(%d)", int(l))
	}
}

// ArrayBinding maps one logical complex array (the accelerator's input or
// output) onto user parameters.
type ArrayBinding struct {
	Layout ComplexLayout

	// Param is the user parameter holding the array (LayoutC99/Struct).
	Param string
	// ReParam/ImParam are the split-array parameters (LayoutSplit).
	ReParam, ImParam string
	// ReOff/ImOff are flattened field offsets within the element struct
	// (LayoutStruct).
	ReOff, ImOff int
	// Elem is the user element type (struct/complex/float).
	Elem *minic.Type
}

// Key returns a canonical identity for dedup/comparison.
func (a ArrayBinding) Key() string {
	switch a.Layout {
	case LayoutSplit:
		return fmt.Sprintf("split(%s,%s)", a.ReParam, a.ImParam)
	case LayoutStruct:
		return fmt.Sprintf("struct(%s,re=%d,im=%d)", a.Param, a.ReOff, a.ImOff)
	default:
		return fmt.Sprintf("c99(%s)", a.Param)
	}
}

// Params returns the user parameter names this binding consumes.
func (a ArrayBinding) Params() []string {
	if a.Layout == LayoutSplit {
		return []string{a.ReParam, a.ImParam}
	}
	return []string{a.Param}
}

// LengthConv is a non-trivial conversion between a user variable and the
// accelerator's length parameter (paper §5.1.1).
type LengthConv int

// Length conversions.
const (
	ConvIdentity LengthConv = iota // accel_len = user_value
	ConvExp2                       // accel_len = 1 << user_value
)

func (c LengthConv) String() string {
	if c == ConvExp2 {
		return "1<<n"
	}
	return "n"
}

// Apply converts a user value to the accelerator length.
func (c LengthConv) Apply(v int64) int64 {
	if c == ConvExp2 {
		if v < 0 || v > 30 {
			return -1
		}
		return 1 << uint(v)
	}
	return v
}

// LengthBinding supplies the accelerator's length parameter.
type LengthBinding struct {
	Param string // user parameter; empty when the length is constant
	Conv  LengthConv
	Const int64 // used when Param == ""
}

func (l LengthBinding) Key() string {
	if l.Param == "" {
		return fmt.Sprintf("const(%d)", l.Const)
	}
	return fmt.Sprintf("%s(%s)", l.Conv, l.Param)
}

// ScalarPin fixes an otherwise-unbound user scalar to a constant; the
// generated range check only admits calls where the parameter equals the
// pinned value (behavioral specialization of the user side).
type ScalarPin struct {
	Param string
	Value int64
}

// DirectionSource supplies an accelerator direction parameter: either a
// specialized constant or a mapping from a user flag parameter.
type DirectionSource struct {
	Constant int64
	Param    string          // non-empty when bound to a user flag
	Map      map[int64]int64 // user value -> accelerator value
}

func (d DirectionSource) Key() string {
	if d.Param == "" {
		return fmt.Sprintf("dir=%d", d.Constant)
	}
	pairs := make([]string, 0, len(d.Map))
	for k, v := range d.Map {
		pairs = append(pairs, fmt.Sprintf("%d->%d", k, v))
	}
	sort.Strings(pairs)
	return fmt.Sprintf("dir=%s{%s}", d.Param, strings.Join(pairs, ","))
}

// Candidate is one complete binding hypothesis.
type Candidate struct {
	Spec   *accel.Spec
	Input  ArrayBinding
	Output ArrayBinding
	Length LengthBinding

	// InPlace is set when the user function overwrites its input array.
	InPlace bool

	// Direction feeds the spec's direction parameter (specs with one).
	Direction *DirectionSource
	// Flags holds specialized constants for flags parameters.
	Flags map[string]int64
	// Pins are range-check-enforced constants for leftover user scalars.
	Pins []ScalarPin
	// FreeParams are user scalars hypothesized not to affect the output;
	// the fuzzer randomizes them to verify.
	FreeParams []string

	// ReturnIgnored notes a non-void user return value hypothesized to be
	// a status code independent of the transform (checked by fuzzing).
	ReturnIgnored bool
}

// Key returns a canonical identity string (used for dedup and stable
// ordering of generate-and-test).
func (c *Candidate) Key() string {
	parts := []string{
		"in=" + c.Input.Key(),
		"out=" + c.Output.Key(),
		"len=" + c.Length.Key(),
	}
	if c.InPlace {
		parts = append(parts, "inplace")
	}
	if c.Direction != nil {
		parts = append(parts, c.Direction.Key())
	}
	if len(c.Flags) > 0 {
		keys := make([]string, 0, len(c.Flags))
		for k, v := range c.Flags {
			keys = append(keys, fmt.Sprintf("%s=%d", k, v))
		}
		sort.Strings(keys)
		parts = append(parts, strings.Join(keys, ","))
	}
	for _, p := range c.Pins {
		parts = append(parts, fmt.Sprintf("pin(%s=%d)", p.Param, p.Value))
	}
	for _, p := range c.FreeParams {
		parts = append(parts, "free("+p+")")
	}
	return strings.Join(parts, " ")
}

// String renders the candidate for diagnostics.
func (c *Candidate) String() string { return c.Spec.Name + ": " + c.Key() }

// Options tunes candidate enumeration; zero value = paper defaults.
type Options struct {
	// DisableRangeHeuristic admits bindings the range heuristic would
	// prune (ablation).
	DisableRangeHeuristic bool
	// DisableSingleRead admits bindings that read one user variable into
	// several accelerator parameters (ablation).
	DisableSingleRead bool
	// MaxCandidates caps enumeration (0 = unlimited).
	MaxCandidates int
	// Obs, when non-nil, receives enumeration metrics: binding.emitted,
	// binding.candidates, and binding.pruned.<heuristic> counters (the
	// enumerated-vs-pruned transparency of paper Fig. 16).
	Obs *obs.Registry
	// Journal, when non-nil, receives the provenance event stream: one
	// "emitted" event per candidate that enters the test queue (with its
	// binding key) and one "pruned" event per heuristic rejection (with
	// the heuristic that killed it). Nil costs nothing.
	Journal *obs.Journal
	// Kills, when non-nil, receives the head of the search funnel:
	// every hypothesis the enumerator forms counts as "generated" and
	// every heuristic/dedup/cap rejection as "pre-filtered", per
	// (function, target). Nil costs nothing.
	Kills *obs.KillTable
}

// complexElemInfo describes how an element type encodes a complex sample.
type complexElemInfo struct {
	ok     bool
	layout ComplexLayout
	reOff  int
	imOff  int
}

// classifyElem decides whether elem can carry complex samples and how.
func classifyElem(elem *minic.Type) []complexElemInfo {
	switch {
	case elem.IsComplex():
		return []complexElemInfo{{ok: true, layout: LayoutC99}}
	case elem.Kind == minic.TStruct:
		// Two real floating fields: enumerate both (re,im) orders, with
		// the conventional naming order first.
		if len(elem.Fields) != 2 ||
			!elem.Fields[0].Type.IsFloat() || !elem.Fields[1].Type.IsFloat() {
			return nil
		}
		first := complexElemInfo{ok: true, layout: LayoutStruct, reOff: 0, imOff: 1}
		second := complexElemInfo{ok: true, layout: LayoutStruct, reOff: 1, imOff: 0}
		if looksImaginary(elem.Fields[0].Name) && !looksImaginary(elem.Fields[1].Name) {
			first, second = second, first
		}
		return []complexElemInfo{first, second}
	default:
		return nil
	}
}

func looksImaginary(name string) bool {
	n := strings.ToLower(name)
	return strings.HasPrefix(n, "im") || n == "i" || strings.HasPrefix(n, "imag")
}

func looksReal(name string) bool {
	n := strings.ToLower(name)
	return strings.HasPrefix(n, "re") || n == "r" || strings.HasPrefix(n, "real")
}
