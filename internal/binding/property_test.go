package binding

import (
	"testing"
	"testing/quick"

	"facc/internal/accel"
	"facc/internal/analysis"
	"facc/internal/minic"
)

// Property: candidate keys are unique and the single-read invariant holds
// for every enumeration (unless the ablation switch lifts it), across
// randomized profiles.
func TestPropertyEnumerationInvariants(t *testing.T) {
	f, err := minic.ParseAndCheck("t.c", `
typedef struct { float re; float im; } cpx;
void fft(cpx* x, int n, int mode, int extra) {
    for (int i = 0; i < n; i++) {
        if (mode) x[i].re = x[i].re + (float)extra;
        x[i].im = x[i].im;
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	fi := analysis.AnalyzeFunc(f, f.Func("fft"))

	prop := func(nVals []uint16, modeVals []uint8, specIdx uint8) bool {
		prof := analysis.NewProfile()
		for _, v := range nVals {
			prof.ObserveInt("n", int64(v))
		}
		for _, v := range modeVals {
			prof.ObserveInt("mode", int64(v%2))
		}
		spec := accel.Specs()[int(specIdx)%3]
		cands := Enumerate(fi, spec, prof, Options{})
		seen := map[string]bool{}
		for _, c := range cands {
			k := c.Key()
			if seen[k] {
				return false // duplicate candidate
			}
			seen[k] = true
			// Single-read: no user parameter consumed twice.
			used := map[string]int{}
			for _, p := range c.Input.Params() {
				used[p]++
			}
			if !c.InPlace {
				for _, p := range c.Output.Params() {
					used[p]++
				}
			}
			if c.Length.Param != "" {
				used[c.Length.Param]++
			}
			if c.Direction != nil && c.Direction.Param != "" {
				used[c.Direction.Param]++
			}
			for _, pin := range c.Pins {
				used[pin.Param]++
			}
			for _, fp := range c.FreeParams {
				used[fp]++
			}
			for _, n := range used {
				if n > 1 {
					return false // double read
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every candidate's length binding is either a parameter of the
// function or a constant inside the spec domain.
func TestPropertyLengthBindingsWellFormed(t *testing.T) {
	f, err := minic.ParseAndCheck("t.c", `
typedef struct { float re; float im; } cpx;
void fft64(cpx* x) {
    for (int i = 0; i < 64; i++) x[i].re = x[i].im;
}`)
	if err != nil {
		t.Fatal(err)
	}
	fi := analysis.AnalyzeFunc(f, f.Func("fft64"))
	for _, spec := range accel.Specs() {
		for _, c := range Enumerate(fi, spec, nil, Options{}) {
			if c.Length.Param != "" {
				t.Errorf("%s: no int params exist, yet length bound to %q",
					spec.Name, c.Length.Param)
			}
			if !spec.Supports(int(c.Length.Const)) {
				t.Errorf("%s: constant length %d outside domain", spec.Name, c.Length.Const)
			}
		}
	}
}
