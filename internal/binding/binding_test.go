package binding

import (
	"strings"
	"testing"

	"facc/internal/accel"
	"facc/internal/analysis"
	"facc/internal/minic"
)

func enumSrc(t *testing.T, src, fn string, spec *accel.Spec, profile *analysis.Profile) []*Candidate {
	t.Helper()
	f, err := minic.ParseAndCheck("t.c", src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	fd := f.Func(fn)
	if fd == nil {
		t.Fatalf("no function %q", fn)
	}
	fi := analysis.AnalyzeFunc(f, fd)
	return Enumerate(fi, spec, profile, Options{})
}

const inPlaceStructSrc = `
typedef struct { float re; float im; } cpx;
void fft(cpx* x, int n) {
    for (int i = 0; i < n; i++) {
        float t = x[i].re;
        x[i].re = x[i].im;
        x[i].im = t;
    }
}`

func TestEnumerateInPlaceStruct(t *testing.T) {
	cands := enumSrc(t, inPlaceStructSrc, "fft", accel.NewFFTA(), nil)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	top := cands[0]
	if !top.InPlace || top.Input.Layout != LayoutStruct || top.Input.Param != "x" {
		t.Errorf("top candidate = %s", top)
	}
	if top.Length.Param != "n" || top.Length.Conv != ConvIdentity {
		t.Errorf("top length = %+v", top.Length)
	}
	// The field-name heuristic must rank re=0,im=1 first.
	if top.Input.ReOff != 0 || top.Input.ImOff != 1 {
		t.Errorf("field order = re@%d im@%d", top.Input.ReOff, top.Input.ImOff)
	}
	// Both field orders must appear somewhere (generate-and-test decides).
	foundSwapped := false
	for _, c := range cands {
		if c.Input.ReOff == 1 {
			foundSwapped = true
		}
	}
	if !foundSwapped {
		t.Error("swapped field order not enumerated")
	}
}

func TestEnumerateOutOfPlaceC99(t *testing.T) {
	src := `
#include <complex.h>
void fft(double complex* in, double complex* out, int n) {
    for (int i = 0; i < n; i++) out[i] = in[i];
}`
	cands := enumSrc(t, src, "fft", accel.NewFFTA(), nil)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	top := cands[0]
	if top.InPlace {
		t.Error("should be out-of-place")
	}
	if top.Input.Param != "in" || top.Output.Param != "out" {
		t.Errorf("top = %s", top)
	}
	if top.Input.Layout != LayoutC99 {
		t.Errorf("layout = %s", top.Input.Layout)
	}
}

func TestEnumerateSplitArrays(t *testing.T) {
	src := `
void fft(float* real, float* imag, int n) {
    for (int i = 0; i < n; i++) {
        float t = real[i];
        real[i] = imag[i];
        imag[i] = t;
    }
}`
	cands := enumSrc(t, src, "fft", accel.NewPowerQuad(), nil)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	top := cands[0]
	if top.Input.Layout != LayoutSplit || top.Input.ReParam != "real" || top.Input.ImParam != "imag" {
		t.Errorf("top = %s", top)
	}
	// Swapped order must also be present.
	swapped := false
	for _, c := range cands {
		if c.Input.Layout == LayoutSplit && c.Input.ReParam == "imag" {
			swapped = true
		}
	}
	if !swapped {
		t.Error("swapped split order not enumerated")
	}
}

func TestExp2ConversionRequiresSmallRange(t *testing.T) {
	src := `
typedef struct { float re; float im; } cpx;
void fft(cpx* x, int logn) {
    int n = 1 << logn;
    for (int i = 0; i < n; i++) x[i].re = x[i].im;
}`
	// Profile says logn in {6..10}: 2^n plausible.
	small := analysis.NewProfile()
	for _, v := range []int64{6, 8, 10} {
		small.ObserveInt("logn", v)
	}
	cands := enumSrc(t, src, "fft", accel.NewFFTA(), small)
	foundExp2 := false
	for _, c := range cands {
		if c.Length.Conv == ConvExp2 && c.Length.Param == "logn" {
			foundExp2 = true
		}
	}
	if !foundExp2 {
		t.Error("2^n conversion not offered for small-range parameter")
	}

	// Profile says the parameter ranges to 1024: 2^1024 is absurd and the
	// range heuristic must prune it (paper Fig. 6).
	big := analysis.NewProfile()
	for _, v := range []int64{64, 256, 1024} {
		big.ObserveInt("logn", v)
	}
	cands = enumSrc(t, src, "fft", accel.NewFFTA(), big)
	for _, c := range cands {
		if c.Length.Conv == ConvExp2 {
			t.Errorf("range heuristic failed to prune 2^n for wide range: %s", c)
		}
	}
}

func TestRangeHeuristicPrunesOutOfDomain(t *testing.T) {
	// Profile says n is always 8..16 — outside FFTA's [64, 65536].
	p := analysis.NewProfile()
	p.ObserveInt("n", 8)
	p.ObserveInt("n", 16)
	cands := enumSrc(t, inPlaceStructSrc, "fft", accel.NewFFTA(), p)
	for _, c := range cands {
		if c.Length.Param == "n" && c.Length.Conv == ConvIdentity {
			t.Errorf("identity binding should be pruned for out-of-domain range: %s", c)
		}
	}
	// Disabling the heuristic brings it back.
	f, _ := minic.ParseAndCheck("t.c", inPlaceStructSrc)
	fi := analysis.AnalyzeFunc(f, f.Func("fft"))
	cands = Enumerate(fi, accel.NewFFTA(), p, Options{DisableRangeHeuristic: true})
	found := false
	for _, c := range cands {
		if c.Length.Param == "n" && c.Length.Conv == ConvIdentity {
			found = true
		}
	}
	if !found {
		t.Error("ablation switch did not restore pruned binding")
	}
}

func TestFlagPinning(t *testing.T) {
	src := `
typedef struct { float re; float im; } cpx;
void fft(cpx* x, int n, int inverse) {
    for (int i = 0; i < n; i++) {
        if (inverse) x[i].im = -x[i].im;
        x[i].re = x[i].re;
    }
}`
	p := analysis.NewProfile()
	p.ObserveInt("inverse", 0)
	p.ObserveInt("inverse", 1)
	p.ObserveInt("n", 1024)
	cands := enumSrc(t, src, "fft", accel.NewFFTA(), p)
	pinned0, pinned1, free := false, false, false
	for _, c := range cands {
		for _, pin := range c.Pins {
			if pin.Param == "inverse" && pin.Value == 0 {
				pinned0 = true
			}
			if pin.Param == "inverse" && pin.Value == 1 {
				pinned1 = true
			}
		}
		for _, fp := range c.FreeParams {
			if fp == "inverse" {
				free = true
			}
		}
	}
	if !pinned0 || !pinned1 || !free {
		t.Errorf("pin enumeration incomplete: pin0=%v pin1=%v free=%v", pinned0, pinned1, free)
	}
}

func TestDirectionBindingForFFTW(t *testing.T) {
	src := `
typedef struct { float re; float im; } cpx;
void fft(cpx* x, int n, int sign) {
    for (int i = 0; i < n; i++) {
        if (sign > 0) x[i].im = -x[i].im;
        x[i].re = x[i].re;
    }
}`
	p := analysis.NewProfile()
	p.ObserveInt("sign", 0)
	p.ObserveInt("sign", 1)
	p.ObserveInt("n", 256)
	cands := enumSrc(t, src, "fft", accel.NewFFTWLib(), p)
	constant, mapped := false, false
	for _, c := range cands {
		if c.Direction == nil {
			continue
		}
		if c.Direction.Param == "" {
			constant = true
		} else if c.Direction.Param == "sign" && len(c.Direction.Map) == 2 {
			mapped = true
		}
	}
	if !constant || !mapped {
		t.Errorf("direction enumeration: constant=%v mapped=%v", constant, mapped)
	}
}

func TestFFTWGeneratesMoreCandidatesThanHardware(t *testing.T) {
	ffta := enumSrc(t, inPlaceStructSrc, "fft", accel.NewFFTA(), nil)
	pq := enumSrc(t, inPlaceStructSrc, "fft", accel.NewPowerQuad(), nil)
	fftw := enumSrc(t, inPlaceStructSrc, "fft", accel.NewFFTWLib(), nil)
	if len(ffta) != len(pq) {
		t.Errorf("FFTA (%d) and PowerQuad (%d) should produce identical candidate counts (Fig. 16)",
			len(ffta), len(pq))
	}
	if len(fftw) <= len(ffta) {
		t.Errorf("FFTW (%d) should produce more candidates than FFTA (%d) (Fig. 16)",
			len(fftw), len(ffta))
	}
}

func TestFixedLengthConstantBinding(t *testing.T) {
	src := `
typedef struct { float re; float im; } cpx;
void fft64(cpx* x) {
    for (int i = 0; i < 64; i++) {
        x[i].re = x[i].re + x[i].im;
        x[i].im = x[i].im;
    }
}`
	cands := enumSrc(t, src, "fft64", accel.NewFFTA(), nil)
	found := false
	for _, c := range cands {
		if c.Length.Param == "" && c.Length.Const == 64 {
			found = true
		}
	}
	if !found {
		t.Errorf("constant length 64 not enumerated (got %d candidates)", len(cands))
	}
}

func TestNoCandidateForPrintf(t *testing.T) {
	src := `
typedef struct { float re; float im; } cpx;
void fft(cpx* x, int n) {
    for (int i = 0; i < n; i++) {
        printf("%f\n", x[i].re);
        x[i].re = 0;
    }
}`
	if cands := enumSrc(t, src, "fft", accel.NewFFTA(), nil); len(cands) != 0 {
		t.Errorf("printf function should have no candidates, got %d", len(cands))
	}
}

func TestNoCandidateForVoidPtr(t *testing.T) {
	src := `void fft(void* data, int n, int esize) { }`
	if cands := enumSrc(t, src, "fft", accel.NewFFTA(), nil); len(cands) != 0 {
		t.Errorf("void* function should have no candidates, got %d", len(cands))
	}
}

func TestNoCandidateForNestedPointers(t *testing.T) {
	src := `
void fft2d(double** rows, int n) {
    for (int i = 0; i < n; i++) rows[i][0] = 0;
}`
	if cands := enumSrc(t, src, "fft2d", accel.NewFFTA(), nil); len(cands) != 0 {
		t.Errorf("nested-pointer function should have no candidates, got %d", len(cands))
	}
}

func TestCandidateKeysUnique(t *testing.T) {
	cands := enumSrc(t, inPlaceStructSrc, "fft", accel.NewFFTWLib(), nil)
	seen := map[string]bool{}
	for _, c := range cands {
		if seen[c.Key()] {
			t.Errorf("duplicate candidate key %q", c.Key())
		}
		seen[c.Key()] = true
	}
}

func TestMaxCandidatesCap(t *testing.T) {
	f, _ := minic.ParseAndCheck("t.c", inPlaceStructSrc)
	fi := analysis.AnalyzeFunc(f, f.Func("fft"))
	cands := Enumerate(fi, accel.NewFFTWLib(), nil, Options{MaxCandidates: 2})
	if len(cands) != 2 {
		t.Errorf("cap not applied: %d", len(cands))
	}
}

func TestLengthConvApply(t *testing.T) {
	if ConvIdentity.Apply(64) != 64 {
		t.Error("identity conversion")
	}
	if ConvExp2.Apply(6) != 64 {
		t.Error("2^n conversion")
	}
	if ConvExp2.Apply(40) != -1 || ConvExp2.Apply(-1) != -1 {
		t.Error("2^n out-of-range guard")
	}
}

func TestReturnIgnoredFlag(t *testing.T) {
	src := `
typedef struct { float re; float im; } cpx;
int fft(cpx* x, int n) {
    for (int i = 0; i < n; i++) x[i].re = x[i].im;
    return 0;
}`
	cands := enumSrc(t, src, "fft", accel.NewFFTA(), nil)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if !cands[0].ReturnIgnored {
		t.Error("non-void return not flagged")
	}
	if !strings.Contains(cands[0].String(), "ffta") {
		t.Errorf("String() = %q", cands[0].String())
	}
}
