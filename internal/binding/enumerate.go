package binding

import (
	"sort"

	"facc/internal/accel"
	"facc/internal/analysis"
	"facc/internal/minic"
	"facc/internal/obs"
)

// scored pairs a candidate with its heuristic priority so the most
// plausible bindings are fuzz-tested first.
type scored struct {
	cand  *Candidate
	score int
	order int // tiebreaker: enumeration order
}

// Enumerate generates all binding candidates for fn against spec, pruned
// by constraints and heuristics. profile may be nil (no value profiling
// environment); the search is then more conservative. Candidates are
// returned in priority order, deduplicated.
func Enumerate(fi *analysis.FuncInfo, spec *accel.Spec, profile *analysis.Profile, opts Options) []*Candidate {
	e := &enumerator{fi: fi, spec: spec, profile: profile, opts: opts}
	e.run()
	sort.SliceStable(e.out, func(i, j int) bool {
		if e.out[i].score != e.out[j].score {
			return e.out[i].score > e.out[j].score
		}
		return e.out[i].order < e.out[j].order
	})
	cands := make([]*Candidate, 0, len(e.out))
	seen := map[string]bool{}
	dups, capped := 0, 0
	for _, s := range e.out {
		k := s.cand.Key()
		if seen[k] {
			dups++
			opts.Journal.Record(obs.JournalEvent{Kind: obs.KindPruned,
				Function: fi.Fn.Name, Heuristic: "dedup", Candidate: k})
			continue
		}
		seen[k] = true
		if opts.MaxCandidates > 0 && len(cands) >= opts.MaxCandidates {
			capped++
			opts.Journal.Record(obs.JournalEvent{Kind: obs.KindPruned,
				Function: fi.Fn.Name, Heuristic: "cap", Candidate: k})
			continue
		}
		cands = append(cands, s.cand)
		opts.Journal.Record(obs.JournalEvent{Kind: obs.KindEmitted,
			Function: fi.Fn.Name, Candidate: k})
	}
	if opts.Obs != nil {
		opts.Obs.Counter("binding.emitted").Add(int64(e.n))
		opts.Obs.Counter("binding.candidates").Add(int64(len(cands)))
		opts.Obs.Counter("binding.pruned.dedup").Add(int64(dups))
		opts.Obs.Counter("binding.pruned.cap").Add(int64(capped))
		opts.Obs.Histogram("binding.candidates_per_function", obs.CountBuckets).
			Observe(float64(len(cands)))
	}
	if opts.Kills != nil {
		// Funnel head: everything the enumerator formed, and everything
		// rejected before fuzzing (heuristics, dedup, the candidate cap).
		opts.Kills.AddGenerated(fi.Fn.Name, spec.Name, int64(e.n+e.pruned))
		opts.Kills.AddPreFiltered(fi.Fn.Name, spec.Name, int64(e.pruned+dups+capped))
	}
	return cands
}

type enumerator struct {
	fi      *analysis.FuncInfo
	spec    *accel.Spec
	profile *analysis.Profile
	opts    Options
	out     []scored
	n       int
	pruned  int
}

func (e *enumerator) emit(c *Candidate, score int) {
	e.n++
	e.out = append(e.out, scored{cand: c, score: score, order: e.n})
}

// prune tallies a heuristic rejection (binding.pruned.<heuristic>) — the
// pruned-vs-enumerated accounting the summary exporter reports — and
// journals which hypothesis the heuristic killed.
func (e *enumerator) prune(heuristic, detail string) {
	e.pruned++
	if e.opts.Obs != nil {
		e.opts.Obs.Counter("binding.pruned." + heuristic).Inc()
	}
	e.opts.Journal.Record(obs.JournalEvent{Kind: obs.KindPruned,
		Function: e.fi.Fn.Name, Heuristic: heuristic, Detail: detail})
}

// arrayChoice is one hypothesis for the (input, output) array pair.
type arrayChoice struct {
	in, out ArrayBinding
	inPlace bool
	used    []string // consumed parameter names
	score   int
}

func (e *enumerator) run() {
	// Functions with observable IO or unsupported parameter shapes get
	// no candidates (paper Fig. 8 failure categories).
	if e.fi.CallsPrintf || e.fi.UsesVoidPtr || e.fi.NestedPointer {
		return
	}
	for _, ac := range e.arrayChoices() {
		e.lengthStage(ac)
	}
}

// arrayChoices enumerates input/output array assignments.
func (e *enumerator) arrayChoices() []arrayChoice {
	var choices []arrayChoice

	type ptrInfo struct {
		p     *analysis.ParamInfo
		elems []complexElemInfo
	}
	var complexPtrs []ptrInfo
	var floatPtrs []*analysis.ParamInfo
	for _, p := range e.fi.PointerParams() {
		elem := p.Type.Decay().Elem
		if infos := classifyElem(elem); infos != nil {
			complexPtrs = append(complexPtrs, ptrInfo{p, infos})
		} else if elem.IsFloat() {
			floatPtrs = append(floatPtrs, p)
		}
	}

	mk := func(p *analysis.ParamInfo, info complexElemInfo, orderScore int) ArrayBinding {
		return ArrayBinding{
			Layout: info.layout,
			Param:  p.Name,
			ReOff:  info.reOff,
			ImOff:  info.imOff,
			Elem:   p.Type.Decay().Elem,
		}
	}

	// Single-array (C99 / struct) shapes.
	for _, pi := range complexPtrs {
		for ord, info := range pi.elems {
			ordScore := 0
			if ord == 0 {
				ordScore = 2 // field-name heuristic
			}
			b := mk(pi.p, info, ordScore)
			if pi.p.Reads && pi.p.Writes {
				choices = append(choices, arrayChoice{
					in: b, out: b, inPlace: true,
					used: []string{pi.p.Name}, score: 4 + ordScore,
				})
			}
		}
	}
	// Out-of-place: reader -> writer pairs with matching layout order.
	for _, inP := range complexPtrs {
		if !inP.p.Reads || inP.p.Writes {
			continue
		}
		for _, outP := range complexPtrs {
			if outP.p.Name == inP.p.Name || !outP.p.Writes {
				continue
			}
			for ord := range inP.elems {
				if ord >= len(outP.elems) {
					continue
				}
				ordScore := 0
				if ord == 0 {
					ordScore = 2
				}
				choices = append(choices, arrayChoice{
					in:    mk(inP.p, inP.elems[ord], ordScore),
					out:   mk(outP.p, outP.elems[ord], ordScore),
					used:  []string{inP.p.Name, outP.p.Name},
					score: 5 + ordScore,
				})
			}
		}
	}

	// Split arrays: pairs of float pointers.
	splitScore := func(re, im *analysis.ParamInfo) int {
		s := 0
		if looksReal(re.Name) {
			s += 2
		}
		if looksImaginary(im.Name) {
			s += 2
		}
		return s
	}
	// In-place split: both arrays read+written.
	for i, re := range floatPtrs {
		for j, im := range floatPtrs {
			if i == j {
				continue
			}
			if !(re.Reads && re.Writes && im.Reads && im.Writes) {
				continue
			}
			b := ArrayBinding{Layout: LayoutSplit, ReParam: re.Name, ImParam: im.Name,
				Elem: re.Type.Decay().Elem}
			choices = append(choices, arrayChoice{
				in: b, out: b, inPlace: true,
				used:  []string{re.Name, im.Name},
				score: 3 + splitScore(re, im),
			})
		}
	}
	// Out-of-place split: read-only pair -> written pair.
	var roFloats, wFloats []*analysis.ParamInfo
	for _, p := range floatPtrs {
		if p.Reads && !p.Writes {
			roFloats = append(roFloats, p)
		}
		if p.Writes {
			wFloats = append(wFloats, p)
		}
	}
	for i, re := range roFloats {
		for j, im := range roFloats {
			if i == j {
				continue
			}
			for k, ore := range wFloats {
				for l, oim := range wFloats {
					if k == l || ore.Name == re.Name || ore.Name == im.Name ||
						oim.Name == re.Name || oim.Name == im.Name {
						continue
					}
					inB := ArrayBinding{Layout: LayoutSplit, ReParam: re.Name,
						ImParam: im.Name, Elem: re.Type.Decay().Elem}
					outB := ArrayBinding{Layout: LayoutSplit, ReParam: ore.Name,
						ImParam: oim.Name, Elem: ore.Type.Decay().Elem}
					choices = append(choices, arrayChoice{
						in: inB, out: outB,
						used:  []string{re.Name, im.Name, ore.Name, oim.Name},
						score: 2 + splitScore(re, im) + splitScore(ore, oim),
					})
				}
			}
		}
	}
	return choices
}

// lengthStage enumerates length bindings for an array choice.
func (e *enumerator) lengthStage(ac arrayChoice) {
	usedSet := map[string]bool{}
	for _, u := range ac.used {
		usedSet[u] = true
	}
	inParam := ac.in.Param
	if ac.in.Layout == LayoutSplit {
		inParam = ac.in.ReParam
	}

	// Ranked integer-parameter candidates: analysis evidence first.
	var ranked []string
	var evidence []string
	if pi := e.fi.Param(inParam); pi != nil {
		evidence = pi.LengthCandidates
	}
	ranked = append(ranked, evidence...)
	for _, ip := range e.fi.IntParams() {
		if !contains(ranked, ip.Name) {
			ranked = append(ranked, ip.Name)
		}
	}

	emitted := false
	for rank, name := range ranked {
		if usedSet[name] && !e.opts.DisableSingleRead {
			e.prune("single-read", "length="+name+" already bound to an array")
			continue
		}
		score := ac.score
		if rank == 0 && len(evidence) > 0 {
			score += 3
		}
		r := e.paramRange(name)
		// Identity conversion, subject to the range heuristic.
		if e.opts.DisableRangeHeuristic || r == nil || e.rangeOverlapsDomain(r, ConvIdentity) {
			e.scalarStage(ac, LengthBinding{Param: name, Conv: ConvIdentity}, score+1, usedSet)
			emitted = true
		} else {
			e.prune("range", "len=n("+name+") profiled values outside the accelerator domain")
		}
		// 2^n conversion: only plausible when the profiled values are
		// small exponents (paper Fig. 6's range-heuristic rejection).
		exp2OK := false
		if e.opts.DisableRangeHeuristic {
			exp2OK = r != nil // still needs a profile to bound allocation
		} else {
			exp2OK = r != nil && r.Max <= 24 && r.Min >= 0 && e.rangeOverlapsDomain(r, ConvExp2)
		}
		if exp2OK {
			e.scalarStage(ac, LengthBinding{Param: name, Conv: ConvExp2}, score, usedSet)
			emitted = true
		} else if r != nil && !e.opts.DisableRangeHeuristic {
			e.prune("range-exp2", "len=1<<"+name+" profiled values outside the accelerator domain")
		}
	}
	if !emitted || len(ranked) == 0 {
		// Fixed-length implementation: constants from loop bounds.
		for _, c := range e.fi.ConstBounds {
			if e.spec.Supports(int(c)) {
				e.scalarStage(ac, LengthBinding{Const: c}, ac.score, usedSet)
			}
		}
	}
}

func (e *enumerator) paramRange(name string) *analysis.Range {
	if e.profile == nil {
		return nil
	}
	return e.profile.Range(name)
}

// rangeOverlapsDomain applies the range heuristic: a length binding is
// plausible only if some observed value lands inside the accelerator's
// domain after conversion.
func (e *enumerator) rangeOverlapsDomain(r *analysis.Range, conv LengthConv) bool {
	if r.Count == 0 {
		return true
	}
	if vals := r.Distinct(); vals != nil {
		for _, v := range vals {
			if n := conv.Apply(v); n > 0 && e.spec.Supports(int(n)) {
				return true
			}
		}
		return false
	}
	lo, hi := conv.Apply(r.Min), conv.Apply(r.Max)
	if lo < 0 || hi < 0 {
		return false
	}
	return hi >= int64(e.spec.MinN) && lo <= int64(e.spec.MaxN)
}

// scalarStage enumerates direction/flags/pins for the remaining scalars.
func (e *enumerator) scalarStage(ac arrayChoice, lb LengthBinding, score int, usedSet map[string]bool) {
	used := map[string]bool{}
	for k := range usedSet {
		used[k] = true
	}
	if lb.Param != "" {
		used[lb.Param] = true
	}

	// Single-read heuristic: a user scalar already consumed (as the
	// length) is not offered again. The ablation switch lifts this.
	var leftovers []string
	for _, ip := range e.fi.IntParams() {
		if !used[ip.Name] || e.opts.DisableSingleRead {
			leftovers = append(leftovers, ip.Name)
		}
	}

	dirParam := e.spec.ParamByRole(accel.RoleDirection)
	var dirs []*DirectionSource
	if dirParam != nil {
		for _, v := range dirParam.Values {
			dirs = append(dirs, &DirectionSource{Constant: v})
		}
		// Bind a user flag to the direction parameter.
		for _, name := range leftovers {
			r := e.paramRange(name)
			if r == nil || !r.IsFlagLike() {
				continue
			}
			vals := r.Distinct()
			if len(vals) != 2 || len(dirParam.Values) != 2 {
				continue
			}
			dirs = append(dirs,
				&DirectionSource{Param: name, Map: map[int64]int64{
					vals[0]: dirParam.Values[0], vals[1]: dirParam.Values[1]}},
				&DirectionSource{Param: name, Map: map[int64]int64{
					vals[0]: dirParam.Values[1], vals[1]: dirParam.Values[0]}},
			)
		}
	} else {
		dirs = []*DirectionSource{nil}
	}

	var flagSets []map[string]int64
	flagSets = append(flagSets, nil)
	for i := range e.spec.Params {
		p := &e.spec.Params[i]
		if p.Role != accel.RoleFlags {
			continue
		}
		var next []map[string]int64
		for _, base := range flagSets {
			for _, v := range p.Values {
				fs := map[string]int64{}
				for k, bv := range base {
					fs[k] = bv
				}
				fs[p.Name] = v
				next = append(next, fs)
			}
		}
		flagSets = next
	}

	for _, dir := range dirs {
		dirUsed := ""
		if dir != nil && dir.Param != "" {
			dirUsed = dir.Param
		}
		// Assign leftover scalars: pinned or free.
		var rem []string
		for _, name := range leftovers {
			if name != dirUsed {
				rem = append(rem, name)
			}
		}
		for _, assign := range e.pinAssignments(rem) {
			for fi2, flags := range flagSets {
				c := &Candidate{
					Spec:    e.spec,
					Input:   ac.in,
					Output:  ac.out,
					Length:  lb,
					InPlace: ac.inPlace,
					Flags:   flags,
					Pins:    assign.pins,
				}
				c.FreeParams = assign.free
				if dir != nil {
					d := *dir
					c.Direction = &d
				}
				s := score
				if dir != nil && dir.Param == "" && dir.Constant == dirParam.Values[0] {
					s++
				}
				// A direction bound from a user flag covers more of the
				// user's domain than a pinned specialization; prefer it.
				if dir != nil && dir.Param != "" {
					s += 2
				}
				if fi2 == 0 {
					s++
				}
				s -= len(assign.pins)
				if e.fi.Fn.Type.Ret.Kind != minic.TVoid {
					c.ReturnIgnored = true
				}
				e.emit(c, s)
			}
		}
	}
}

type pinAssign struct {
	pins []ScalarPin
	free []string
}

// pinAssignments enumerates pin/free combinations for leftover scalars.
// Flag-like parameters may be pinned to each observed value or left free;
// wide-range parameters are always free (fuzzing verifies independence).
func (e *enumerator) pinAssignments(names []string) []pinAssign {
	out := []pinAssign{{}}
	for _, name := range names {
		r := e.paramRange(name)
		var options []pinAssign
		for _, base := range out {
			// Free variant.
			freeVariant := pinAssign{
				pins: append([]ScalarPin{}, base.pins...),
				free: append(append([]string{}, base.free...), name),
			}
			options = append(options, freeVariant)
			if r != nil && r.IsFlagLike() {
				for _, v := range r.Distinct() {
					options = append(options, pinAssign{
						pins: append(append([]ScalarPin{}, base.pins...), ScalarPin{name, v}),
						free: append([]string{}, base.free...),
					})
				}
			}
		}
		out = options
	}
	return out
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
