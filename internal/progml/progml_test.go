package progml

import (
	"testing"

	"facc/internal/bench"
	"facc/internal/minic"
)

func build(t *testing.T, src, fn string) ( /*graph*/ *testGraph, *minic.File) {
	t.Helper()
	f, err := minic.ParseAndCheck("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	g := BuildRegionGraph(f, f.Func(fn))
	return &testGraph{N: g.X.R, feats: g.X}, f
}

type testGraph struct {
	N     int
	feats interface{ At(i, j int) float64 }
}

func (g *testGraph) featureCount(feat int) int {
	n := 0
	for i := 0; i < g.N; i++ {
		if g.feats.At(i, feat) > 0 {
			n++
		}
	}
	return n
}

func TestGraphBasicShape(t *testing.T) {
	g, _ := build(t, `
int sum(int* a, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += a[i];
    return s;
}`, "sum")
	if g.N < 8 {
		t.Fatalf("graph too small: %d nodes", g.N)
	}
	if g.featureCount(FeatLoop) != 1 {
		t.Errorf("loop nodes = %d, want 1", g.featureCount(FeatLoop))
	}
	if g.featureCount(FeatReturn) != 1 {
		t.Errorf("return nodes = %d, want 1", g.featureCount(FeatReturn))
	}
	if g.featureCount(FeatIndex) == 0 {
		t.Error("no index node")
	}
}

func TestTrigCallsMarked(t *testing.T) {
	g, _ := build(t, `
#include <math.h>
double f(double x) { return sin(x) + cos(x) + sqrt(x); }`, "f")
	if g.featureCount(FeatCallTrig) != 2 {
		t.Errorf("trig calls = %d, want 2 (sin, cos)", g.featureCount(FeatCallTrig))
	}
	if g.featureCount(FeatCallMath) != 1 {
		t.Errorf("math calls = %d, want 1 (sqrt)", g.featureCount(FeatCallMath))
	}
}

func TestRecursionMarked(t *testing.T) {
	g, _ := build(t, `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}`, "fib")
	if g.featureCount(FeatRecursion) != 2 {
		t.Errorf("recursion nodes = %d, want 2", g.featureCount(FeatRecursion))
	}
}

func TestComplexVarsMarked(t *testing.T) {
	g, _ := build(t, `
#include <complex.h>
void f(double complex* x, int n) {
    for (int i = 0; i < n; i++) x[i] = x[i] * x[i];
}`, "f")
	if g.featureCount(FeatVarComplex) == 0 && g.featureCount(FeatVarPointer) == 0 {
		t.Error("no complex/pointer variable nodes")
	}
}

func TestRegionGraphInlinesCallees(t *testing.T) {
	soloSrc := `
void entry(double* x, int n) {
    for (int i = 0; i < n; i++) x[i] = 0.0;
}`
	callSrc := `
void helper(double* x, int n) {
    for (int i = 0; i < n; i++) x[i] = 0.0;
}
void entry(double* x, int n) {
    helper(x, n);
    for (int i = 0; i < n; i++) x[i] = 1.0;
}`
	solo, _ := build(t, soloSrc, "entry")
	merged, _ := build(t, callSrc, "entry")
	if merged.N <= solo.N {
		t.Errorf("region graph should include callee: %d <= %d nodes", merged.N, solo.N)
	}
}

func TestRecursiveCallGraphTerminates(t *testing.T) {
	g, _ := build(t, `
void a(int n);
void b(int n) { a(n - 1); }
void a(int n) { if (n > 0) b(n); }
`, "a")
	if g.N == 0 {
		t.Fatal("empty graph")
	}
}

func TestBuildFileGraphs(t *testing.T) {
	f, err := minic.ParseAndCheck("t.c", `
int one(void) { return 1; }
int two(void) { return 2; }
`)
	if err != nil {
		t.Fatal(err)
	}
	gs := BuildFileGraphs(f)
	if len(gs) != 2 {
		t.Fatalf("graphs = %d, want 2", len(gs))
	}
	if gs["one"] == nil || gs["two"] == nil {
		t.Error("missing per-function graphs")
	}
}

// TestCorpusGraphsWellFormed builds the region graph of every corpus
// program: non-trivial node counts, and every supported FFT entry carries
// the trig-call signal the classifier leans on.
func TestCorpusGraphsWellFormed(t *testing.T) {
	for _, b := range bench.Suite() {
		f, err := minic.ParseAndCheck(b.File, b.Source())
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		g := BuildRegionGraph(f, f.Func(b.Entry))
		if g.X.R < 20 {
			t.Errorf("%s: region graph only %d nodes", b.Name, g.X.R)
		}
		trig := 0
		for i := 0; i < g.X.R; i++ {
			if g.X.At(i, FeatCallTrig) > 0 {
				trig++
			}
		}
		// Every corpus program except the constant-table ones computes
		// twiddles with sin/cos/cexp somewhere in its region.
		if trig == 0 && b.Twiddles != "Constant" {
			t.Errorf("%s: no trig-call nodes in region graph", b.Name)
		}
	}
}
