// Package progml builds ProGraML-style program graphs from checked MiniC
// functions: one node per operation/statement with a categorical opcode
// feature, and edges for AST data flow, sequential/loop control flow, and
// calls. The paper builds these graphs over LLVM IR; MiniC's typed AST
// carries the same signal for the classification task (the substitution is
// recorded in DESIGN.md).
package progml

import (
	"facc/internal/gnn"
	"facc/internal/minic"
)

// Feature channels (one-hot opcode categories plus a few numeric hints).
const (
	FeatAddSub = iota
	FeatMul
	FeatDiv
	FeatMod
	FeatShift
	FeatBitwise
	FeatCompare
	FeatLogic
	FeatNeg
	FeatAssign
	FeatCompoundAssign
	FeatIndex
	FeatMember
	FeatDeref
	FeatAddrOf
	FeatCast
	FeatCallUser
	FeatCallMath
	FeatCallTrig // sin/cos/cexp family — highly FFT-indicative
	FeatCallMem
	FeatCallIO
	FeatBranch
	FeatLoop
	FeatSwitch
	FeatReturn
	FeatConstInt
	FeatConstFloat
	FeatVarInt
	FeatVarFloat
	FeatVarComplex
	FeatVarPointer
	FeatVarStruct
	FeatIncDec
	FeatTernary
	FeatRecursion
	NumFeatures
)

// builder accumulates nodes and edges for one function.
type builder struct {
	fn    *minic.FuncDecl
	feats []int // feature id per node
	edges [][2]int
}

func (b *builder) node(feat int) int {
	id := len(b.feats)
	b.feats = append(b.feats, feat)
	return id
}

func (b *builder) edge(a, c int) {
	if a >= 0 && c >= 0 {
		b.edges = append(b.edges, [2]int{a, c})
	}
}

// BuildGraph converts one function into a gnn.Graph. The label is filled
// in by the caller.
func BuildGraph(fn *minic.FuncDecl) *gnn.Graph {
	b := &builder{fn: fn}
	entry := b.node(FeatBranch) // entry node anchors the control chain
	if fn.Body != nil {
		b.stmt(fn.Body, entry)
	}
	x := gnn.NewMat(len(b.feats), NumFeatures)
	for i, f := range b.feats {
		x.Set(i, f, 1)
	}
	return &gnn.Graph{X: x, Adj: gnn.NewAdj(len(b.feats), b.edges)}
}

// stmt adds nodes for a statement, chained to prev via a control edge, and
// returns the statement's last node.
func (b *builder) stmt(s minic.Stmt, prev int) int {
	switch st := s.(type) {
	case nil:
		return prev
	case *minic.ExprStmt:
		n := b.expr(st.X)
		b.edge(prev, n)
		return n
	case *minic.DeclStmt:
		last := prev
		for _, d := range st.Decls {
			n := b.node(varFeature(d.Type))
			b.edge(last, n)
			if d.Init != nil {
				b.edge(n, b.expr(d.Init))
			}
			last = n
		}
		return last
	case *minic.BlockStmt:
		last := prev
		for _, sub := range st.List {
			last = b.stmt(sub, last)
		}
		return last
	case *minic.IfStmt:
		n := b.node(FeatBranch)
		b.edge(prev, n)
		b.edge(n, b.expr(st.Cond))
		thenEnd := b.stmt(st.Then, n)
		elseEnd := b.stmt(st.Else, n)
		join := b.node(FeatBranch)
		b.edge(thenEnd, join)
		b.edge(elseEnd, join)
		return join
	case *minic.ForStmt:
		head := b.node(FeatLoop)
		b.edge(prev, head)
		if st.Init != nil {
			b.stmt(st.Init, head)
		}
		if st.Cond != nil {
			b.edge(head, b.expr(st.Cond))
		}
		bodyEnd := b.stmt(st.Body, head)
		if st.Post != nil {
			b.edge(bodyEnd, b.expr(st.Post))
		}
		b.edge(bodyEnd, head) // back edge
		return head
	case *minic.WhileStmt:
		head := b.node(FeatLoop)
		b.edge(prev, head)
		b.edge(head, b.expr(st.Cond))
		bodyEnd := b.stmt(st.Body, head)
		b.edge(bodyEnd, head)
		return head
	case *minic.SwitchStmt:
		n := b.node(FeatSwitch)
		b.edge(prev, n)
		b.edge(n, b.expr(st.Tag))
		for _, cc := range st.Cases {
			last := n
			for _, sub := range cc.Body {
				last = b.stmt(sub, last)
			}
		}
		return n
	case *minic.ReturnStmt:
		n := b.node(FeatReturn)
		b.edge(prev, n)
		if st.Value != nil {
			b.edge(n, b.expr(st.Value))
		}
		return n
	case *minic.BreakStmt, *minic.ContinueStmt:
		n := b.node(FeatBranch)
		b.edge(prev, n)
		return n
	default:
		return prev
	}
}

// expr adds nodes for an expression tree rooted at e.
func (b *builder) expr(e minic.Expr) int {
	switch x := e.(type) {
	case nil:
		return -1
	case *minic.IntLitExpr:
		return b.node(FeatConstInt)
	case *minic.FloatLitExpr:
		return b.node(FeatConstFloat)
	case *minic.ImaginaryLitExpr:
		return b.node(FeatConstFloat)
	case *minic.StringLitExpr:
		return b.node(FeatConstInt)
	case *minic.IdentExpr:
		t := x.ResultType()
		if x.Def != nil {
			t = x.Def.Type
		}
		return b.node(varFeature(t))
	case *minic.UnaryExpr:
		feat := FeatNeg
		switch x.Op {
		case minic.Star:
			feat = FeatDeref
		case minic.Amp:
			feat = FeatAddrOf
		case minic.PlusPlus, minic.MinusMinus:
			feat = FeatIncDec
		case minic.Not, minic.Tilde:
			feat = FeatLogic
		}
		n := b.node(feat)
		b.edge(n, b.expr(x.X))
		return n
	case *minic.BinaryExpr:
		n := b.node(binFeature(x.Op))
		b.edge(n, b.expr(x.L))
		b.edge(n, b.expr(x.R))
		return n
	case *minic.AssignExpr:
		feat := FeatAssign
		if x.Op != minic.Assign {
			feat = FeatCompoundAssign
		}
		n := b.node(feat)
		b.edge(n, b.expr(x.L))
		b.edge(n, b.expr(x.R))
		return n
	case *minic.CondExpr:
		n := b.node(FeatTernary)
		b.edge(n, b.expr(x.Cond))
		b.edge(n, b.expr(x.Then))
		b.edge(n, b.expr(x.Else))
		return n
	case *minic.CallExpr:
		n := b.node(callFeature(b.fn, x))
		for _, a := range x.Args {
			b.edge(n, b.expr(a))
		}
		return n
	case *minic.IndexExpr:
		n := b.node(FeatIndex)
		b.edge(n, b.expr(x.X))
		b.edge(n, b.expr(x.Index))
		return n
	case *minic.MemberExpr:
		n := b.node(FeatMember)
		b.edge(n, b.expr(x.X))
		return n
	case *minic.CastExpr:
		n := b.node(FeatCast)
		b.edge(n, b.expr(x.X))
		return n
	case *minic.SizeofExpr:
		n := b.node(FeatConstInt)
		if x.X != nil {
			b.edge(n, b.expr(x.X))
		}
		return n
	case *minic.CommaExpr:
		n := b.expr(x.L)
		r := b.expr(x.R)
		b.edge(n, r)
		return r
	case *minic.InitListExpr:
		n := b.node(FeatConstInt)
		for _, it := range x.Items {
			b.edge(n, b.expr(it))
		}
		return n
	default:
		return b.node(FeatConstInt)
	}
}

func binFeature(op minic.Kind) int {
	switch op {
	case minic.Plus, minic.Minus:
		return FeatAddSub
	case minic.Star:
		return FeatMul
	case minic.Slash:
		return FeatDiv
	case minic.Percent:
		return FeatMod
	case minic.Shl, minic.Shr:
		return FeatShift
	case minic.Amp, minic.Pipe, minic.Caret:
		return FeatBitwise
	case minic.Lt, minic.Gt, minic.Le, minic.Ge, minic.EqEq, minic.NotEq:
		return FeatCompare
	case minic.AndAnd, minic.OrOr:
		return FeatLogic
	default:
		return FeatAddSub
	}
}

var trigBuiltins = map[string]bool{
	"sin": true, "cos": true, "sinf": true, "cosf": true, "tan": true,
	"cexp": true, "cexpf": true, "atan2": true, "atan2f": true,
}

var memBuiltins = map[string]bool{
	"malloc": true, "calloc": true, "realloc": true, "free": true,
	"memcpy": true, "memmove": true, "memset": true,
}

var ioBuiltins = map[string]bool{
	"printf": true, "fprintf": true, "puts": true, "putchar": true,
}

func callFeature(owner *minic.FuncDecl, call *minic.CallExpr) int {
	if call.Builtin != "" {
		switch {
		case trigBuiltins[call.Builtin]:
			return FeatCallTrig
		case memBuiltins[call.Builtin]:
			return FeatCallMem
		case ioBuiltins[call.Builtin]:
			return FeatCallIO
		default:
			return FeatCallMath
		}
	}
	if id, ok := call.Fun.(*minic.IdentExpr); ok && id.Func != nil &&
		owner != nil && id.Func.Name == owner.Name {
		return FeatRecursion
	}
	return FeatCallUser
}

func varFeature(t *minic.Type) int {
	t = t.Decay()
	switch {
	case t == nil:
		return FeatVarInt
	case t.IsComplex():
		return FeatVarComplex
	case t.IsFloat():
		return FeatVarFloat
	case t.Kind == minic.TPointer:
		return FeatVarPointer
	case t.Kind == minic.TStruct:
		return FeatVarStruct
	default:
		return FeatVarInt
	}
}

// BuildFileGraphs builds one graph per defined function, merging the call
// graph: helper functions called from an entry are inlined into its graph
// (shallowly, by unioning node sets) so a classified "region" covers the
// whole algorithm the way the paper's region detection does.
func BuildFileGraphs(f *minic.File) map[string]*gnn.Graph {
	out := map[string]*gnn.Graph{}
	for _, fn := range f.Funcs {
		if fn.Body == nil {
			continue
		}
		out[fn.Name] = BuildRegionGraph(f, fn)
	}
	return out
}

// BuildRegionGraph builds the graph of fn with the bodies of its (direct
// and transitive) callees appended, connected by call edges — the
// classifiable "region".
func BuildRegionGraph(f *minic.File, fn *minic.FuncDecl) *gnn.Graph {
	visited := map[string]bool{fn.Name: true}
	queue := []*minic.FuncDecl{fn}
	var feats []int
	var edges [][2]int
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		b := &builder{fn: cur}
		entry := b.node(FeatBranch)
		if cur.Body != nil {
			b.stmt(cur.Body, entry)
		}
		base := len(feats)
		feats = append(feats, b.feats...)
		for _, e := range b.edges {
			edges = append(edges, [2]int{e[0] + base, e[1] + base})
		}
		// Enqueue unvisited callees.
		for _, callee := range calleesOf(cur) {
			if visited[callee] {
				continue
			}
			visited[callee] = true
			if cf := f.Func(callee); cf != nil && cf.Body != nil {
				queue = append(queue, cf)
			}
		}
	}
	x := gnn.NewMat(len(feats), NumFeatures)
	for i, ft := range feats {
		x.Set(i, ft, 1)
	}
	return &gnn.Graph{X: x, Adj: gnn.NewAdj(len(feats), edges)}
}

// calleesOf lists the user functions a function calls directly.
func calleesOf(fn *minic.FuncDecl) []string {
	seen := map[string]bool{}
	var out []string
	var walkE func(minic.Expr)
	var walkS func(minic.Stmt)
	walkE = func(e minic.Expr) {
		switch x := e.(type) {
		case nil:
		case *minic.CallExpr:
			if x.Builtin == "" {
				if id, ok := x.Fun.(*minic.IdentExpr); ok && id.Func != nil && !seen[id.Func.Name] {
					seen[id.Func.Name] = true
					out = append(out, id.Func.Name)
				}
			}
			walkE(x.Fun)
			for _, a := range x.Args {
				walkE(a)
			}
		case *minic.UnaryExpr:
			walkE(x.X)
		case *minic.BinaryExpr:
			walkE(x.L)
			walkE(x.R)
		case *minic.AssignExpr:
			walkE(x.L)
			walkE(x.R)
		case *minic.CondExpr:
			walkE(x.Cond)
			walkE(x.Then)
			walkE(x.Else)
		case *minic.IndexExpr:
			walkE(x.X)
			walkE(x.Index)
		case *minic.MemberExpr:
			walkE(x.X)
		case *minic.CastExpr:
			walkE(x.X)
		case *minic.CommaExpr:
			walkE(x.L)
			walkE(x.R)
		case *minic.SizeofExpr:
			walkE(x.X)
		case *minic.InitListExpr:
			for _, it := range x.Items {
				walkE(it)
			}
		}
	}
	walkS = func(s minic.Stmt) {
		switch st := s.(type) {
		case nil:
		case *minic.ExprStmt:
			walkE(st.X)
		case *minic.DeclStmt:
			for _, d := range st.Decls {
				walkE(d.Init)
				if d.Type != nil {
					walkE(d.Type.ArrayLenExpr)
				}
			}
		case *minic.BlockStmt:
			for _, sub := range st.List {
				walkS(sub)
			}
		case *minic.IfStmt:
			walkE(st.Cond)
			walkS(st.Then)
			walkS(st.Else)
		case *minic.ForStmt:
			walkS(st.Init)
			walkE(st.Cond)
			walkE(st.Post)
			walkS(st.Body)
		case *minic.WhileStmt:
			walkE(st.Cond)
			walkS(st.Body)
		case *minic.SwitchStmt:
			walkE(st.Tag)
			for _, cc := range st.Cases {
				for _, sub := range cc.Body {
					walkS(sub)
				}
			}
		case *minic.ReturnStmt:
			walkE(st.Value)
		}
	}
	if fn.Body != nil {
		walkS(fn.Body)
	}
	return out
}
