package idl

import (
	"testing"

	"facc/internal/bench"
	"facc/internal/minic"
)

func extractBench(t *testing.T, b *bench.Benchmark) Pattern {
	t.Helper()
	f, err := minic.ParseAndCheck(b.File, b.Source())
	if err != nil {
		t.Fatal(err)
	}
	return Extract(f, f.Func(b.Entry))
}

func TestPatternMatchesItself(t *testing.T) {
	b0 := bench.Suite()[0]
	p := extractBench(t, b0)
	if len(p) < 50 {
		t.Fatalf("benchmark 0 pattern only %d atoms", len(p))
	}
	if !Matches(p, extractBench(t, b0)) {
		t.Error("pattern does not match its own source")
	}
}

func TestPatternIsNameIndependent(t *testing.T) {
	src1 := `
void f(double* data, int n) {
    for (int i = 0; i < n; i++) data[i] = data[i] * 2.0;
}`
	src2 := `
void g(double* samples, int count) {
    for (int k = 0; k < count; k++) samples[k] = samples[k] * 2.0;
}`
	f1, err := minic.ParseAndCheck("a.c", src1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := minic.ParseAndCheck("b.c", src2)
	if err != nil {
		t.Fatal(err)
	}
	p1 := Extract(f1, f1.Func("f"))
	p2 := Extract(f2, f2.Func("g"))
	if !Matches(p1, p2) {
		t.Error("alpha-renamed functions should match")
	}
}

func TestPatternIsShapeBrittle(t *testing.T) {
	// The same loop with i++ replaced by i += 1 must NOT match — this is
	// the brittleness the paper demonstrates.
	src1 := `
void f(double* d, int n) {
    for (int i = 0; i < n; i++) d[i] = 0.0;
}`
	src2 := `
void f(double* d, int n) {
    for (int i = 0; i < n; i += 1) d[i] = 0.0;
}`
	f1, _ := minic.ParseAndCheck("a.c", src1)
	f2, _ := minic.ParseAndCheck("b.c", src2)
	if Matches(Extract(f1, f1.Func("f")), Extract(f2, f2.Func("f"))) {
		t.Error("structurally different code matched")
	}
}

// TestFigure9: the pattern authored from benchmark 0 matches exactly one
// corpus member — benchmark 0 itself.
func TestFigure9IDLMatchesOnlyItsSource(t *testing.T) {
	pattern := extractBench(t, bench.Suite()[0])
	matched := 0
	for _, b := range bench.Suite() {
		if Matches(pattern, extractBench(t, b)) {
			matched++
			if b.ID != 0 {
				t.Errorf("pattern unexpectedly matched benchmark %d (%s)", b.ID, b.Name)
			}
		}
	}
	if matched != 1 {
		t.Errorf("pattern matched %d benchmarks, want exactly 1", matched)
	}
}

// TestFigure12: prefix-match counts decay with pattern length; by 50 atoms
// only the source benchmark remains.
func TestFigure12PrefixDecay(t *testing.T) {
	pattern := extractBench(t, bench.Suite()[0])
	var all []Pattern
	for _, b := range bench.Suite() {
		all = append(all, extractBench(t, b))
	}
	countAt := func(l int) int {
		n := 0
		for _, p := range all {
			if MatchPrefix(pattern[:l], p) == l {
				n++
			}
		}
		return n
	}
	c1 := countAt(1)
	if c1 < 2 {
		t.Errorf("one-atom prefix matches %d benchmarks; expected several", c1)
	}
	c50 := countAt(50)
	if c50 != 1 {
		t.Errorf("50-atom prefix matches %d benchmarks, want 1 (paper Fig. 12)", c50)
	}
	// Monotone non-increasing.
	prev := len(all) + 1
	for _, l := range []int{1, 5, 10, 20, 50, len(pattern)} {
		c := countAt(l)
		if c > prev {
			t.Errorf("prefix match count increased at length %d", l)
		}
		prev = c
	}
}

func TestAtomString(t *testing.T) {
	a := Atom{Op: "bin:+", Args: []string{"v0", "v1"}}
	if a.String() != "bin:+(v0,v1)" {
		t.Errorf("atom string = %q", a.String())
	}
	if (Atom{Op: "for"}).String() != "for" {
		t.Error("bare atom string")
	}
}
