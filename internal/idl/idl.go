// Package idl reimplements the paper's constraint-based baseline (IDL,
// Ginsbach et al. ASPLOS'18) at the fidelity the comparison needs: a
// pattern is an abstracted instruction sequence extracted from a reference
// implementation (constants and identifiers become constraint variables),
// and a candidate matches only if its own sequence is identical under a
// consistent variable renaming. This is exactly the brittleness the paper
// demonstrates: the pattern hand-built from benchmark 0 matches benchmark 0
// and nothing else (Fig. 9), and pattern prefixes stop matching anything
// else well before 50 atoms (Fig. 12).
package idl

import (
	"fmt"
	"strings"

	"facc/internal/minic"
)

// Atom is one abstracted instruction of a pattern: an opcode plus operand
// slots. Identifier operands are canonically renamed (first occurrence =
// v0, then v1, ...) so patterns are name-independent but shape-exact;
// integer constants are kept (they are structural: radix, bit counts).
type Atom struct {
	Op   string
	Args []string
}

func (a Atom) String() string {
	if len(a.Args) == 0 {
		return a.Op
	}
	return a.Op + "(" + strings.Join(a.Args, ",") + ")"
}

// Pattern is an abstracted instruction sequence.
type Pattern []Atom

// String renders the pattern one atom per line.
func (p Pattern) String() string {
	var b strings.Builder
	for _, a := range p {
		b.WriteString(a.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Extract builds the pattern of a function (with callees appended in call
// order, mirroring region extraction).
func Extract(f *minic.File, fn *minic.FuncDecl) Pattern {
	ex := &extractor{
		file:    f,
		names:   map[string]string{},
		visited: map[string]bool{fn.Name: true},
	}
	ex.fn(fn)
	for i := 0; i < len(ex.queue); i++ {
		callee := ex.queue[i]
		if cf := f.Func(callee); cf != nil && cf.Body != nil {
			ex.fn(cf)
		}
	}
	return ex.out
}

type extractor struct {
	file    *minic.File
	out     Pattern
	names   map[string]string
	visited map[string]bool
	queue   []string
}

func (ex *extractor) emit(op string, args ...string) {
	ex.out = append(ex.out, Atom{Op: op, Args: args})
}

// canon canonically renames an identifier.
func (ex *extractor) canon(name string) string {
	if v, ok := ex.names[name]; ok {
		return v
	}
	v := fmt.Sprintf("v%d", len(ex.names))
	ex.names[name] = v
	return v
}

func (ex *extractor) fn(fn *minic.FuncDecl) {
	// The arity is not part of the leading atom: real IDL patterns match
	// common prologues before diverging (paper Fig. 12), and parameter
	// atoms follow one by one.
	ex.emit("func")
	for _, p := range fn.Params {
		ex.emit("param", typeShape(p.Type), ex.canon(p.Name))
	}
	ex.emit("body")
	ex.stmt(fn.Body)
}

// typeShape abstracts a type to its structural shape.
func typeShape(t *minic.Type) string {
	t2 := t.Decay()
	switch {
	case t2 == nil:
		return "?"
	case t2.Kind == minic.TPointer:
		return "ptr:" + typeShape(t2.Elem)
	case t2.Kind == minic.TStruct:
		return fmt.Sprintf("struct%d", len(t2.Fields))
	case t2.IsComplex():
		return "complex"
	case t2.IsFloat():
		return "float"
	case t2.IsInteger():
		return "int"
	default:
		return t2.String()
	}
}

func (ex *extractor) stmt(s minic.Stmt) {
	switch st := s.(type) {
	case nil:
	case *minic.ExprStmt:
		ex.expr(st.X)
	case *minic.DeclStmt:
		for _, d := range st.Decls {
			ex.emit("decl", typeShape(d.Type), ex.canon(d.Name))
			if d.Init != nil {
				ex.expr(d.Init)
			}
		}
	case *minic.BlockStmt:
		for _, sub := range st.List {
			ex.stmt(sub)
		}
	case *minic.IfStmt:
		ex.emit("if")
		ex.expr(st.Cond)
		ex.stmt(st.Then)
		if st.Else != nil {
			ex.emit("else")
			ex.stmt(st.Else)
		}
		ex.emit("endif")
	case *minic.ForStmt:
		ex.emit("for")
		ex.stmt(st.Init)
		if st.Cond != nil {
			ex.expr(st.Cond)
		}
		if st.Post != nil {
			ex.expr(st.Post)
		}
		ex.stmt(st.Body)
		ex.emit("endfor")
	case *minic.WhileStmt:
		if st.Do {
			ex.emit("dowhile")
		} else {
			ex.emit("while")
		}
		ex.expr(st.Cond)
		ex.stmt(st.Body)
		ex.emit("endwhile")
	case *minic.SwitchStmt:
		ex.emit("switch")
		ex.expr(st.Tag)
		for _, cc := range st.Cases {
			if cc.IsDefault {
				ex.emit("default")
			} else {
				ex.emit("case")
				ex.expr(cc.Value)
			}
			for _, sub := range cc.Body {
				ex.stmt(sub)
			}
		}
		ex.emit("endswitch")
	case *minic.BreakStmt:
		ex.emit("break")
	case *minic.ContinueStmt:
		ex.emit("continue")
	case *minic.ReturnStmt:
		ex.emit("return")
		if st.Value != nil {
			ex.expr(st.Value)
		}
	}
}

func (ex *extractor) expr(e minic.Expr) {
	switch x := e.(type) {
	case nil:
	case *minic.IntLitExpr:
		ex.emit("const", fmt.Sprintf("%d", x.Value))
	case *minic.FloatLitExpr:
		ex.emit("fconst")
	case *minic.ImaginaryLitExpr:
		ex.emit("iconst")
	case *minic.StringLitExpr:
		ex.emit("sconst")
	case *minic.IdentExpr:
		ex.emit("use", ex.canon(x.Name))
	case *minic.UnaryExpr:
		op := "un:" + x.Op.String()
		if x.Post {
			op = "post:" + x.Op.String()
		}
		ex.emit(op)
		ex.expr(x.X)
	case *minic.BinaryExpr:
		ex.emit("bin:" + x.Op.String())
		ex.expr(x.L)
		ex.expr(x.R)
	case *minic.AssignExpr:
		ex.emit("asn:" + x.Op.String())
		ex.expr(x.L)
		ex.expr(x.R)
	case *minic.CondExpr:
		ex.emit("sel")
		ex.expr(x.Cond)
		ex.expr(x.Then)
		ex.expr(x.Else)
	case *minic.CallExpr:
		if x.Builtin != "" {
			ex.emit("call:" + x.Builtin)
		} else if id, ok := x.Fun.(*minic.IdentExpr); ok && id.Func != nil {
			if !ex.visited[id.Func.Name] {
				ex.visited[id.Func.Name] = true
				ex.queue = append(ex.queue, id.Func.Name)
			}
			ex.emit("call", ex.canon(id.Func.Name))
		} else {
			ex.emit("icall")
		}
		for _, a := range x.Args {
			ex.expr(a)
		}
	case *minic.IndexExpr:
		ex.emit("index")
		ex.expr(x.X)
		ex.expr(x.Index)
	case *minic.MemberExpr:
		op := "member"
		if x.Arrow {
			op = "arrow"
		}
		ex.emit(op, fmt.Sprintf("f%d", x.FieldIndex))
		ex.expr(x.X)
	case *minic.CastExpr:
		ex.emit("cast", typeShape(x.To))
		ex.expr(x.X)
	case *minic.SizeofExpr:
		ex.emit("sizeof")
		if x.X != nil {
			ex.expr(x.X)
		}
	case *minic.CommaExpr:
		ex.expr(x.L)
		ex.expr(x.R)
	case *minic.InitListExpr:
		ex.emit("initlist", fmt.Sprintf("%d", len(x.Items)))
		for _, it := range x.Items {
			ex.expr(it)
		}
	}
}

// MatchPrefix reports how many leading atoms of pattern match the
// candidate's sequence (both canonically renamed at extraction).
func MatchPrefix(pattern, candidate Pattern) int {
	n := 0
	for i := range pattern {
		if i >= len(candidate) {
			return n
		}
		if !atomEqual(pattern[i], candidate[i]) {
			return n
		}
		n++
	}
	return n
}

// Matches reports whether candidate matches the full pattern exactly.
func Matches(pattern, candidate Pattern) bool {
	return len(pattern) == len(candidate) && MatchPrefix(pattern, candidate) == len(pattern)
}

func atomEqual(a, b Atom) bool {
	if a.Op != b.Op || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}
