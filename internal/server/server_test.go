package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"facc"
	"facc/internal/bench"
	"facc/internal/obs"
	"facc/internal/obs/obshttp"
	"facc/internal/store"
)

func compileReq(src string) facc.CompileRequest {
	return facc.CompileRequest{Name: "t.c", Source: src, Target: "ffta"}
}

func post(t *testing.T, ts *httptest.Server, req facc.CompileRequest, query string) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/compile"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJob(t *testing.T, resp *http.Response) jobJSON {
	t.Helper()
	defer resp.Body.Close()
	var v jobJSON
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// gateCompile is a CompileFunc whose calls announce themselves on
// entered and park until release is closed, so tests can hold workers
// busy deterministically.
type gateCompile struct {
	mu      sync.Mutex
	calls   int
	entered chan struct{}
	release chan struct{}
	open    sync.Once
}

func newGateCompile() *gateCompile {
	return &gateCompile{
		entered: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
}

func (g *gateCompile) compile(ctx context.Context, req facc.CompileRequest) (CompileResult, error) {
	g.mu.Lock()
	g.calls++
	g.mu.Unlock()
	g.entered <- struct{}{}
	select {
	case <-g.release:
	case <-ctx.Done():
		return CompileResult{}, ctx.Err()
	}
	return CompileResult{AdapterC: "/* adapter for */ " + req.Source, Function: "fft"}, nil
}

func (g *gateCompile) callCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.calls
}

// unblock lets every parked (and future) compile finish; safe to call
// more than once.
func (g *gateCompile) unblock() {
	g.open.Do(func() { close(g.release) })
}

func waitEntered(t *testing.T, g *gateCompile) {
	t.Helper()
	select {
	case <-g.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("no compile started")
	}
}

// TestServerSheds429UnderSaturation is the overload half of the ISSUE
// acceptance: with one busy worker and a full queue, the next request is
// shed with 429 + Retry-After while the admitted jobs still complete,
// and the shed count is visible in both /status and /metrics.
func TestServerSheds429UnderSaturation(t *testing.T) {
	gate := newGateCompile()
	tr := obs.New()
	s := New(Config{QueueDepth: 2, Workers: 1, Tracer: tr, Compile: gate.compile})
	defer s.Drain(context.Background())
	defer gate.unblock()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// First job occupies the only worker...
	resp := post(t, ts, compileReq("src-0"), "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 0: status %d", resp.StatusCode)
	}
	running := decodeJob(t, resp)
	waitEntered(t, gate)
	// ...two more fill the queue...
	var queued []string
	for i := 1; i <= 2; i++ {
		resp := post(t, ts, compileReq(fmt.Sprintf("src-%d", i)), "")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d: status %d", i, resp.StatusCode)
		}
		queued = append(queued, decodeJob(t, resp).ID)
	}
	// ...and the next is shed, not queued, not errored.
	resp = post(t, ts, compileReq("src-3"), "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated POST: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	resp.Body.Close()

	// The shed is observable: /status serve block and Prometheus.
	var status obshttp.Status
	sresp, err := ts.Client().Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if status.Serve == nil {
		t.Fatal("/status has no serve block")
	}
	if status.Serve.JobsShed != 1 || status.Serve.QueueCapacity != 2 || status.Serve.Workers != 1 {
		t.Fatalf("serve status = %+v", status.Serve)
	}
	if status.Serve.JobsAdmitted != 3 {
		t.Fatalf("jobs_admitted = %d, want 3", status.Serve.JobsAdmitted)
	}
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(prom), "facc_serve_jobs_shed 1") {
		t.Fatalf("/metrics missing shed count:\n%s", prom)
	}

	// In-flight and queued jobs complete despite the overload.
	gate.unblock()
	deadline := time.Now().Add(10 * time.Second)
	for _, id := range append([]string{running.ID}, queued...) {
		for {
			jresp, err := ts.Client().Get(ts.URL + "/jobs/" + id + "?wait=1")
			if err != nil {
				t.Fatal(err)
			}
			v := decodeJob(t, jresp)
			if v.State == string(Done) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", id, v.State)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if got := tr.Metrics().Counters()["serve.jobs_completed"]; got != 3 {
		t.Fatalf("jobs_completed = %d, want 3", got)
	}
}

// TestServerDedupSingleflight: identical sources submitted while the
// first is in flight attach to the same job; the compiler runs once.
func TestServerDedupSingleflight(t *testing.T) {
	gate := newGateCompile()
	tr := obs.New()
	s := New(Config{QueueDepth: 8, Workers: 2, Tracer: tr, Compile: gate.compile})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := make(chan jobJSON, 1)
	go func() {
		resp := post(t, ts, compileReq("same-source"), "?wait=1")
		first <- decodeJob(t, resp)
	}()
	waitEntered(t, gate)

	resp := post(t, ts, compileReq("same-source"), "")
	// The duplicate was attached to the in-flight job, not enqueued.
	if resp.Header.Get("X-Facc-Dedup") != "true" {
		t.Fatalf("duplicate not deduped (headers %v)", resp.Header)
	}
	attached := decodeJob(t, resp)
	gate.unblock()
	orig := <-first
	if attached.ID != orig.ID {
		t.Fatalf("duplicate got its own job: %s vs %s", attached.ID, orig.ID)
	}
	jresp, err := ts.Client().Get(ts.URL + "/jobs/" + orig.ID + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	dup := decodeJob(t, jresp)
	if dup.ID != orig.ID || dup.AdapterC != orig.AdapterC || dup.State != string(Done) {
		t.Fatalf("dedup mismatch: orig=%+v dup=%+v", orig, dup)
	}
	if gate.callCount() != 1 {
		t.Fatalf("compile ran %d times, want 1", gate.callCount())
	}
	if got := tr.Metrics().Counters()["serve.jobs_deduped"]; got != 1 {
		t.Fatalf("jobs_deduped = %d, want 1", got)
	}
}

// TestServerStoreMemoizes: a second identical request is served from the
// adapter store without recompiling, across server instances.
func TestServerStoreMemoizes(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, obs.New().Metrics())
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	countCompile := func(ctx context.Context, req facc.CompileRequest) (CompileResult, error) {
		calls++
		return CompileResult{AdapterC: "/* cached adapter */", Function: "fft"}, nil
	}
	s := New(Config{QueueDepth: 4, Workers: 1, Store: st, Compile: countCompile})
	ts := httptest.NewServer(s.Handler())

	resp := post(t, ts, compileReq("memoized"), "?wait=1")
	if resp.Header.Get("X-Facc-Cache") == "hit" {
		t.Fatal("first request claims a cache hit")
	}
	v := decodeJob(t, resp)
	if v.State != string(Done) {
		t.Fatalf("first request: %+v", v)
	}
	resp = post(t, ts, compileReq("memoized"), "?wait=1")
	if resp.Header.Get("X-Facc-Cache") != "hit" {
		t.Fatal("second request missed the store")
	}
	v2 := decodeJob(t, resp)
	if !v2.Cached || v2.AdapterC != v.AdapterC {
		t.Fatalf("cached response = %+v", v2)
	}
	if calls != 1 {
		t.Fatalf("compile ran %d times, want 1", calls)
	}
	ts.Close()
	s.Drain(context.Background())
	st.Close()

	// A fresh daemon on the same store inherits the cache: restarts are
	// warm.
	st2, err := store.Open(dir, obs.New().Metrics())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2 := New(Config{QueueDepth: 4, Workers: 1, Store: st2, Compile: countCompile})
	defer s2.Drain(context.Background())
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp = post(t, ts2, compileReq("memoized"), "?wait=1")
	if resp.Header.Get("X-Facc-Cache") != "hit" {
		t.Fatal("restarted daemon missed the store")
	}
	if v3 := decodeJob(t, resp); v3.AdapterC != v.AdapterC {
		t.Fatal("restarted daemon served a different adapter")
	}
	if calls != 1 {
		t.Fatalf("compile ran %d times after restart, want 1", calls)
	}
}

// TestServerGracefulDrain: during drain the daemon refuses new work
// (503, /readyz not ready) but finishes what it admitted.
func TestServerGracefulDrain(t *testing.T) {
	gate := newGateCompile()
	s := New(Config{QueueDepth: 4, Workers: 1, Compile: gate.compile})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := post(t, ts, compileReq("in-flight"), "")
	job := decodeJob(t, resp)
	waitEntered(t, gate)

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	rresp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %d, want 503", rresp.StatusCode)
	}
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while draining: %d, want 200 (still alive)", hresp.StatusCode)
	}
	resp = post(t, ts, compileReq("late"), "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 without Retry-After")
	}
	resp.Body.Close()

	gate.unblock()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	jresp, err := ts.Client().Get(ts.URL + "/jobs/" + job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v := decodeJob(t, jresp); v.State != string(Done) {
		t.Fatalf("in-flight job after drain: %+v", v)
	}
}

// TestServerDrainDeadlineHardCancels: when the drain budget expires, the
// stuck compile is cancelled through the base context and surfaces as a
// failed job rather than a hung daemon.
func TestServerDrainDeadlineHardCancels(t *testing.T) {
	stuck := func(ctx context.Context, req facc.CompileRequest) (CompileResult, error) {
		<-ctx.Done() // a compile that never yields on its own
		return CompileResult{}, ctx.Err()
	}
	tr := obs.New()
	s := New(Config{QueueDepth: 4, Workers: 1, Tracer: tr, Compile: stuck})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := post(t, ts, compileReq("stuck"), "")
	job := decodeJob(t, resp)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain of a stuck job reported success")
	}
	jresp, err := ts.Client().Get(ts.URL + "/jobs/" + job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v := decodeJob(t, jresp); v.State != string(Failed) {
		t.Fatalf("stuck job after hard cancel: %+v", v)
	}
	if got := tr.Metrics().Counters()["serve.drain_hard_cancels"]; got != 1 {
		t.Fatalf("drain_hard_cancels = %d, want 1", got)
	}
}

// TestServerRejectsBadRequests covers the admission validations.
func TestServerRejectsBadRequests(t *testing.T) {
	s := New(Config{QueueDepth: 2, Workers: 1, Compile: func(context.Context, facc.CompileRequest) (CompileResult, error) {
		return CompileResult{}, nil
	}})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		req  facc.CompileRequest
		want int
	}{
		{facc.CompileRequest{Source: "", Target: "ffta"}, http.StatusBadRequest},
		{facc.CompileRequest{Source: "void f() {}", Target: "tpu9000"}, http.StatusBadRequest},
		{facc.CompileRequest{Source: "void f() {}", Target: "ffta", NumTests: -1}, http.StatusBadRequest},
	} {
		resp := post(t, ts, tc.req, "")
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("POST %+v: status %d, want %d", tc.req, resp.StatusCode, tc.want)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/compile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /compile: status %d, want 405", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/jobs/nonesuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /jobs/nonesuch: status %d, want 404", resp.StatusCode)
	}
}

// TestServerCrashRecoveryEndToEnd is the ISSUE acceptance test: compile
// a real corpus program through the daemon, tear its cached adapter on
// disk mid-"write" (object damaged, WAL begin without commit), restart,
// and require that the store quarantines the damage, the daemon
// recompiles, and the served adapter is byte-identical to what the
// sequential CLI path produces.
func TestServerCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real synthesis in -short mode")
	}
	bm, err := bench.ByName("iterdit")
	if err != nil {
		t.Fatal(err)
	}
	req := facc.CompileRequest{
		Name:          bm.File,
		Source:        bm.Source(),
		Target:        "ffta",
		Entry:         bm.Entry,
		ProfileValues: bm.ProfileValues,
		NumTests:      3,
	}
	opts := facc.Options{Harden: true} // what cmd/faccd always sets

	// The sequential CLI baseline: same request, no daemon.
	base, err := facc.CompileRequestContext(context.Background(), req, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !base.OK() {
		t.Fatalf("baseline compile failed: %s", base.FailReason())
	}
	want := base.AdapterC()

	dir := t.TempDir()
	st, err := store.Open(dir, obs.New().Metrics())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{QueueDepth: 4, Workers: 2, Store: st, Options: opts})
	ts := httptest.NewServer(s.Handler())

	resp := post(t, ts, req, "?wait=1")
	v := decodeJob(t, resp)
	if v.State != string(Done) {
		t.Fatalf("daemon compile: %+v", v)
	}
	if v.AdapterC != want {
		t.Fatal("daemon adapter differs from the sequential CLI run")
	}
	ts.Close()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Crash: the page holding the serialized entry is damaged on disk
	// (a torn write the checksum will catch) and the WAL gains a torn
	// tail — a record whose durability fsync never completed.
	corruptStoreDB(t, dir, []byte(`"adapter_c"`))
	wal, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	wal.Write([]byte("FWAL\xff\xff\xff\xff torn mid-append"))
	wal.Close()

	// Restart: recovery quarantines the torn entry, the next request
	// recompiles, and the result matches the baseline byte for byte.
	reg2 := obs.New()
	st2, err := store.Open(dir, reg2.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := reg2.Metrics().Counters()["store.corrupt_quarantined"]; got != 1 {
		t.Fatalf("corrupt_quarantined after restart = %d, want 1", got)
	}
	s2 := New(Config{QueueDepth: 4, Workers: 2, Store: st2, Options: opts, Tracer: reg2})
	defer s2.Drain(context.Background())
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	resp = post(t, ts2, req, "?wait=1")
	if resp.Header.Get("X-Facc-Cache") == "hit" {
		t.Fatal("torn entry served as a cache hit")
	}
	v = decodeJob(t, resp)
	if v.State != string(Done) {
		t.Fatalf("recompile after recovery: %+v", v)
	}
	if v.AdapterC != want {
		t.Fatal("recompiled adapter differs from the sequential CLI run")
	}

	// And the heal is durable: the next request is a byte-identical hit.
	resp = post(t, ts2, req, "?wait=1")
	if resp.Header.Get("X-Facc-Cache") != "hit" {
		t.Fatal("healed entry not served from the store")
	}
	if v2 := decodeJob(t, resp); v2.AdapterC != want {
		t.Fatal("healed adapter differs from the sequential CLI run")
	}
}

// corruptStoreDB flips the bytes of the last on-disk occurrence of
// needle inside store.db — damage the page checksum must catch. The
// last occurrence is the live copy: earlier ones may be stale
// copy-on-write page versions nothing references.
func corruptStoreDB(t *testing.T, dir string, needle []byte) {
	t.Helper()
	path := filepath.Join(dir, "store.db")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.LastIndex(data, needle)
	if i < 0 {
		t.Fatalf("store.db does not contain %q", needle)
	}
	for j := i; j < i+len(needle); j++ {
		data[j] ^= 0xFF
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestServerQuarantineSingleflight: when a cached entry is quarantined,
// a burst of identical requests must collapse into exactly ONE
// recompile — the first miss registers the in-flight job, the rest
// dedup onto it, and nobody is ever served the damaged adapter.
func TestServerQuarantineSingleflight(t *testing.T) {
	dir := t.TempDir()
	req := compileReq("quarantine-singleflight")
	key := req.Digest()

	st, err := store.Open(dir, obs.New().Metrics())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(key, store.Entry{
		Target:   "ffta",
		Function: "fft",
		AdapterC: "/* QUARANTINE-TARGET adapter */",
	}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	corruptStoreDB(t, dir, []byte("QUARANTINE-TARGET"))

	reg := obs.New()
	st2, err := store.Open(dir, reg.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := reg.Metrics().Counters()["store.corrupt_quarantined"]; got < 1 {
		t.Fatalf("corrupt_quarantined = %d, want >= 1", got)
	}

	gate := newGateCompile()
	s := New(Config{QueueDepth: 8, Workers: 2, Store: st2, Tracer: reg, Compile: gate.compile})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// First request: must miss (quarantined entries are never served)
	// and start the one recompile.
	type reply struct {
		hit   bool
		dedup bool
		v     jobJSON
	}
	replies := make(chan reply, 6)
	doPost := func() {
		resp := post(t, ts, req, "?wait=1")
		replies <- reply{
			hit:   resp.Header.Get("X-Facc-Cache") == "hit",
			dedup: resp.Header.Get("X-Facc-Dedup") == "true",
			v:     decodeJob(t, resp),
		}
	}
	go doPost()
	waitEntered(t, gate)
	// Recompile is parked mid-flight: five more identical requests must
	// all attach to it, not start their own.
	for i := 0; i < 5; i++ {
		go doPost()
	}
	deadline := time.After(10 * time.Second)
	for i := 0; i < 5; i++ {
		select {
		case <-gate.entered:
			t.Fatal("a deduped request started a second recompile")
		case <-time.After(50 * time.Millisecond):
		case <-deadline:
			t.Fatal("timed out waiting for dedup settle")
		}
	}
	gate.unblock()

	deduped := 0
	for i := 0; i < 6; i++ {
		select {
		case r := <-replies:
			if r.hit {
				t.Fatal("a request was served the quarantined adapter as a cache hit")
			}
			if r.v.State != string(Done) {
				t.Fatalf("request finished %+v", r.v)
			}
			if r.dedup {
				deduped++
			}
		case <-time.After(10 * time.Second):
			t.Fatal("request never finished")
		}
	}
	if got := gate.callCount(); got != 1 {
		t.Fatalf("recompiles = %d, want exactly 1", got)
	}
	if deduped != 5 {
		t.Fatalf("deduped replies = %d, want 5", deduped)
	}

	// The heal is durable: the recompiled adapter committed, clearing
	// the quarantine, so the next request is a plain cache hit.
	resp := post(t, ts, req, "?wait=1")
	if resp.Header.Get("X-Facc-Cache") != "hit" {
		t.Fatal("healed entry not served from the store")
	}
	decodeJob(t, resp)
}

// TestServerRetryAfterScalesWithQueueDepth: the 429 Retry-After hint is
// backlog × average compile time ÷ workers — a saturated daemon with
// slow compiles tells clients to come back later than an idle one, so
// the retry wave lands when capacity plausibly exists.
func TestServerRetryAfterScalesWithQueueDepth(t *testing.T) {
	gate := newGateCompile()
	s := New(Config{QueueDepth: 8, Workers: 1, Compile: gate.compile})
	defer s.Drain(context.Background())
	defer gate.unblock()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Recent compiles averaged two seconds.
	s.observeCompileTime(2 * time.Second)

	// One job on the worker, eight in the queue.
	resp := post(t, ts, compileReq("ra-0"), "")
	resp.Body.Close()
	waitEntered(t, gate)
	for i := 1; i <= 8; i++ {
		resp := post(t, ts, compileReq(fmt.Sprintf("ra-%d", i)), "")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp = post(t, ts, compileReq("ra-9"), "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated POST: status %d, want 429", resp.StatusCode)
	}
	// Backlog is 9 jobs (1 running + 8 queued) × 2s each ÷ 1 worker.
	if ra := resp.Header.Get("Retry-After"); ra != "18" {
		t.Fatalf("Retry-After = %q, want %q", ra, "18")
	}

	// The hint is clamped: even an absurd EMA cannot push it past 60s.
	s.observeCompileTime(30 * time.Minute)
	resp = post(t, ts, compileReq("ra-10"), "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second shed: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "60" {
		t.Fatalf("clamped Retry-After = %q, want %q", ra, "60")
	}
}
