// The SLO flight recorder: a bounded in-memory record of the requests
// that matter when the pager goes off — the slowest and the failed —
// each retained with its full span tree, provenance events and cost
// ledger, joinable by trace ID to the latency exemplars in /metrics.
// Dumped at /debug/requests.
package server

import (
	"sort"
	"sync"

	"facc/internal/obs"
)

// SpanRecord is one span of a retained request, flattened for JSON.
type SpanRecord struct {
	ID      int64          `json:"id"`
	Parent  int64          `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartUs float64        `json:"start_us"`
	DurUs   float64        `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// RequestRecord is one retained request: identity, outcome, and the three
// trace-scoped observability streams.
type RequestRecord struct {
	Trace     string  `json:"trace"`
	JobID     string  `json:"job_id"`
	Digest    string  `json:"digest"`
	Target    string  `json:"target"`
	State     string  `json:"state"`
	Err       string  `json:"error,omitempty"`
	LatencyMS float64 `json:"latency_ms"`
	// SLOViolation marks a request that blew the latency target or
	// failed outright — the events the burn rate counts.
	SLOViolation bool `json:"slo_violation"`

	Spans   []SpanRecord       `json:"spans,omitempty"`
	Journal []obs.JournalEvent `json:"journal,omitempty"`
	Ledger  []obs.LedgerEntry  `json:"ledger,omitempty"`
	// Search and Kills carry the request's search-observatory view:
	// the funnel summary and every kill event this trace recorded.
	Search *obs.SearchSummary `json:"search,omitempty"`
	Kills  []obs.KillEvent    `json:"kills,omitempty"`
}

// FlightRecorder retains the N slowest and the N most recent failed
// requests. Bounded: memory stays flat no matter how long the daemon
// runs. Nil-safe: a nil recorder drops everything.
type FlightRecorder struct {
	cap int

	mu      sync.Mutex
	slowest []*RequestRecord // sorted by LatencyMS descending, ≤ cap
	failed  []*RequestRecord // ring of failed requests, oldest first, ≤ cap
}

// NewFlightRecorder returns a recorder retaining up to n requests per
// class (slowest / failed). n <= 0 gets the default of 32.
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = 32
	}
	return &FlightRecorder{cap: n}
}

// Observe offers one finished request. Failed requests always enter the
// failure ring (evicting the oldest); every request competes for the
// slowest list.
func (f *FlightRecorder) Observe(rec *RequestRecord) {
	if f == nil || rec == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if rec.State == string(Failed) {
		f.failed = append(f.failed, rec)
		if len(f.failed) > f.cap {
			f.failed = f.failed[1:]
		}
	}
	if len(f.slowest) < f.cap {
		f.slowest = append(f.slowest, rec)
	} else if last := f.slowest[len(f.slowest)-1]; rec.LatencyMS > last.LatencyMS {
		f.slowest[len(f.slowest)-1] = rec
	} else {
		return
	}
	sort.SliceStable(f.slowest, func(i, j int) bool {
		return f.slowest[i].LatencyMS > f.slowest[j].LatencyMS
	})
}

// Records snapshots both retention classes.
func (f *FlightRecorder) Records() (slowest, failed []*RequestRecord) {
	if f == nil {
		return nil, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	slowest = append([]*RequestRecord(nil), f.slowest...)
	failed = append([]*RequestRecord(nil), f.failed...)
	return slowest, failed
}

// Len returns (slowest, failed) retention counts.
func (f *FlightRecorder) Len() (int, int) {
	if f == nil {
		return 0, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.slowest), len(f.failed)
}

// spanRecords flattens a request's span tree for retention.
func spanRecords(spans []*obs.Span) []SpanRecord {
	if len(spans) == 0 {
		return nil
	}
	out := make([]SpanRecord, 0, len(spans))
	for _, sp := range spans {
		rec := SpanRecord{
			ID:      sp.ID,
			Parent:  sp.Par,
			Name:    sp.Name,
			StartUs: float64(sp.Start.Microseconds()),
			DurUs:   float64(sp.Dur.Microseconds()),
		}
		if len(sp.Attrs) > 0 {
			rec.Attrs = make(map[string]any, len(sp.Attrs))
			for _, a := range sp.Attrs {
				rec.Attrs[a.Key] = a.Value()
			}
		}
		out = append(out, rec)
	}
	return out
}
