package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"facc"
	"facc/internal/bench"
	"facc/internal/obs"
	"facc/internal/store"
)

// postTraced POSTs a compile request with an X-Facc-Trace header.
func postTraced(t *testing.T, ts *httptest.Server, req facc.CompileRequest, query, trace string) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/compile"+query, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if trace != "" {
		hreq.Header.Set("X-Facc-Trace", trace)
	}
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// debugRequests is the wire form of /debug/requests.
type debugRequests struct {
	SLOLatencyMS float64          `json:"slo_latency_ms"`
	SLOObjective float64          `json:"slo_objective"`
	Slowest      []*RequestRecord `json:"slowest"`
	Failed       []*RequestRecord `json:"failed"`
}

// TestServerTraceJoinEndToEnd is the tentpole acceptance test: one trace
// ID, supplied by the client, must be joinable across the response
// header, the job JSON, the span export, the journal JSONL, the cost
// ledger, the /metrics exemplars, and the /debug/requests flight record —
// through a real compile of a corpus program.
func TestServerTraceJoinEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real synthesis in -short mode")
	}
	bm, err := bench.ByName("iterdit")
	if err != nil {
		t.Fatal(err)
	}
	req := facc.CompileRequest{
		Name:          bm.File,
		Source:        bm.Source(),
		Target:        "ffta",
		Entry:         bm.Entry,
		ProfileValues: bm.ProfileValues,
		NumTests:      3,
	}
	tr := obs.New()
	j := obs.NewJournal()
	led := obs.NewLedger()
	kills := obs.NewKillTable()
	st, err := store.Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := New(Config{
		QueueDepth: 4, Workers: 1,
		Tracer: tr, Journal: j, Ledger: led, Kills: kills, Store: st,
		Options: facc.Options{Harden: true},
	})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const trace = "deadbeefdeadbeefdeadbeefdeadbeef"
	resp := postTraced(t, ts, req, "?wait=1", trace)
	if got := resp.Header.Get("X-Facc-Trace"); got != trace {
		t.Fatalf("response X-Facc-Trace = %q, want %q", got, trace)
	}
	v := decodeJob(t, resp)
	if v.State != string(Done) {
		t.Fatalf("compile: %+v", v)
	}
	if v.Trace != trace {
		t.Fatalf("job trace = %q, want %q", v.Trace, trace)
	}

	// The span tree carries the trace: the compile root span and its
	// children are retrievable by ID and exported with it.
	spans := tr.TraceSpans(trace)
	if len(spans) == 0 {
		t.Fatal("no spans joined to the trace")
	}
	var chrome bytes.Buffer
	if err := tr.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chrome.String(), trace) {
		t.Error("Chrome trace export lost the trace ID")
	}

	// The provenance journal events are stamped, and the JSONL export
	// carries the stamp — the grep target serve_smoke.sh asserts.
	if evs := j.TraceEvents(trace); len(evs) == 0 {
		t.Fatal("no journal events joined to the trace")
	}
	var jsonl bytes.Buffer
	if err := j.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonl.String(), `"trace":"`+trace+`"`) {
		t.Error("journal JSONL export lost the trace ID")
	}

	// The cost ledger charged this request's synthesis work to the trace,
	// and the deterministic search produced exactly one winner account.
	entries := led.TraceEntries(trace)
	if len(entries) == 0 {
		t.Fatal("no ledger accounts joined to the trace")
	}
	winners := 0
	for _, e := range entries {
		if e.Verdict == obs.VerdictWinner {
			winners++
		}
	}
	if winners != 1 {
		t.Errorf("%d winner accounts on the trace, want 1: %+v", winners, entries)
	}

	// The persisted adapter is stamped with the trace that compiled it.
	if ent, ok := st.Get(req.Digest()); !ok {
		t.Error("adapter not persisted to the store")
	} else if ent.Trace != trace {
		t.Errorf("store entry trace = %q, want %q", ent.Trace, trace)
	}

	// /metrics: the latency histogram's exemplar names the trace.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(prom), "trace_id="+trace) {
		t.Error("/metrics has no exemplar naming the trace")
	}
	if !strings.Contains(string(prom), "facc_ledger_tests_total") {
		t.Error("/metrics missing the ledger exposition")
	}
	if !strings.Contains(string(prom), "facc_search_candidates_total") {
		t.Error("/metrics missing the search funnel exposition")
	}

	// /debug/requests: the flight record joins everything.
	dresp, err := ts.Client().Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	var dump debugRequests
	if err := json.NewDecoder(dresp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	var rec *RequestRecord
	for _, r := range dump.Slowest {
		if r.Trace == trace {
			rec = r
		}
	}
	if rec == nil {
		t.Fatalf("trace not in /debug/requests slowest list (%d records)", len(dump.Slowest))
	}
	if len(rec.Spans) == 0 || len(rec.Journal) == 0 || len(rec.Ledger) == 0 {
		t.Errorf("flight record incomplete: %d spans, %d journal events, %d ledger accounts",
			len(rec.Spans), len(rec.Journal), len(rec.Ledger))
	}
	if rec.Search == nil || rec.Search.Dispatched == 0 || rec.Search.Winners != 1 {
		t.Errorf("flight record search funnel = %+v, want dispatched > 0 with 1 winner",
			rec.Search)
	}
	for _, ev := range rec.Kills {
		if ev.Trace != trace {
			t.Errorf("flight record kill event on foreign trace: %+v", ev)
		}
	}

	// /status: the per-target oracle stats and cost summary surface.
	sresp, err := ts.Client().Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	status, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if !strings.Contains(string(status), `"costs"`) {
		t.Error("/status missing the cost summary")
	}
	if !strings.Contains(string(status), `"search"`) {
		t.Error("/status missing the search block")
	}

	// A request without the header gets a generated, well-formed ID.
	resp2 := postTraced(t, ts, facc.CompileRequest{
		Name: "gen.c", Source: bm.Source(), Target: "powerquad",
		Entry: bm.Entry, ProfileValues: bm.ProfileValues, NumTests: 3,
	}, "?wait=1", "")
	gen := resp2.Header.Get("X-Facc-Trace")
	resp2.Body.Close()
	if !regexp.MustCompile(`^[0-9a-f]{32}$`).MatchString(gen) {
		t.Errorf("generated trace ID %q is not 32 hex chars", gen)
	}
}

// TestServerTraceHeaderValidation: a hostile X-Facc-Trace — over-long,
// wrong charset, or carrying header/JSON metacharacters — is replaced
// with a generated ID instead of being propagated into exemplar lines,
// journal exports and store entries. Well-formed client IDs (not just
// 32-hex ones) are still honored verbatim.
func TestServerTraceHeaderValidation(t *testing.T) {
	compile := func(ctx context.Context, req facc.CompileRequest) (CompileResult, error) {
		return CompileResult{AdapterC: "/* ok */", Function: "fft"}, nil
	}
	s := New(Config{
		QueueDepth: 4, Workers: 1,
		Tracer: obs.New(), Compile: compile,
	})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	generated := regexp.MustCompile(`^[0-9a-f]{32}$`)
	hostile := []string{
		strings.Repeat("x", 65), // over the length cap
		"trace with spaces",     // charset violation
		"semi;colon",            // header-injection flavor
		`quote"breaker`,         // JSON-injection flavor
		"curly{brace}",          // Prometheus label breaker
	}
	for i, trace := range hostile {
		resp := postTraced(t, ts, facc.CompileRequest{
			Name: "t.c", Source: fmt.Sprintf("hostile-%d", i), Target: "ffta",
		}, "?wait=1", trace)
		got := resp.Header.Get("X-Facc-Trace")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got == trace {
			t.Errorf("hostile trace %q echoed back verbatim", trace)
		}
		if !generated.MatchString(got) {
			t.Errorf("hostile trace %q: replacement %q is not a generated ID", trace, got)
		}
	}

	valid := []string{"build-42.stage_1", "A", strings.Repeat("y", 64)}
	for i, trace := range valid {
		resp := postTraced(t, ts, facc.CompileRequest{
			Name: "t.c", Source: fmt.Sprintf("valid-%d", i), Target: "ffta",
		}, "?wait=1", trace)
		got := resp.Header.Get("X-Facc-Trace")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got != trace {
			t.Errorf("valid trace %q not echoed (got %q)", trace, got)
		}
	}
}

// TestServerFlightRecorderConcurrent hammers the daemon with parallel
// successful and failing requests while /status, /metrics and
// /debug/requests are read concurrently — under -race this is the
// data-race proof for the ledger + flight-recorder write/read paths.
func TestServerFlightRecorderConcurrent(t *testing.T) {
	injected := errors.New("injected fault")
	compile := func(ctx context.Context, req facc.CompileRequest) (CompileResult, error) {
		if strings.HasSuffix(req.Source, "!") {
			return CompileResult{}, injected
		}
		return CompileResult{AdapterC: "/* ok */", Function: "fft"}, nil
	}
	tr := obs.New()
	s := New(Config{
		QueueDepth: 64, Workers: 4,
		Tracer: tr, Journal: obs.NewJournal(), Ledger: obs.NewLedger(),
		FlightRecorder: 8,
		Compile:        compile,
	})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for _, path := range []string{"/status", "/metrics", "/debug/requests"} {
		readers.Add(1)
		go func(path string) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := ts.Client().Get(ts.URL + path)
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(path)
	}

	const requests = 24
	var wg sync.WaitGroup
	errc := make(chan error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := fmt.Sprintf("src-%d", i)
			if i%3 == 0 {
				src += "!" // every third request hits the injected fault
			}
			body, err := json.Marshal(facc.CompileRequest{Name: "t.c", Source: src, Target: "ffta"})
			if err != nil {
				errc <- err
				return
			}
			resp, err := ts.Client().Post(ts.URL+"/compile?wait=1", "application/json", bytes.NewReader(body))
			if err != nil {
				errc <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}(i)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	slow, failed := s.flight.Len()
	if slow == 0 || failed == 0 {
		t.Fatalf("flight recorder retained %d slowest / %d failed, want both > 0", slow, failed)
	}
	if slow > 8 || failed > 8 {
		t.Fatalf("flight recorder exceeded its cap: %d slowest / %d failed", slow, failed)
	}
	dresp, err := ts.Client().Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	var dump debugRequests
	if err := json.NewDecoder(dresp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	for _, r := range dump.Failed {
		if r.State != string(Failed) || !r.SLOViolation {
			t.Errorf("failure ring holds a non-failed record: %+v", r)
		}
	}
	c := tr.Metrics().Counters()
	if c["serve.slo_total"] != requests {
		t.Errorf("slo_total = %d, want %d", c["serve.slo_total"], requests)
	}
	if c["serve.slo_violations"] < c["serve.jobs_failed"] || c["serve.jobs_failed"] == 0 {
		t.Errorf("slo_violations = %d with %d failed jobs",
			c["serve.slo_violations"], c["serve.jobs_failed"])
	}
}

// TestFlightRecorderBounds: eviction keeps both retention classes at the
// cap, the slowest list stays sorted, and a nil recorder is a no-op.
func TestFlightRecorderBounds(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 0; i < 10; i++ {
		f.Observe(&RequestRecord{
			Trace:     fmt.Sprintf("t%d", i),
			LatencyMS: float64(i),
			State:     string(Done),
		})
	}
	slowest, failed := f.Records()
	if len(slowest) != 3 || len(failed) != 0 {
		t.Fatalf("retained %d/%d, want 3/0", len(slowest), len(failed))
	}
	for i, want := range []float64{9, 8, 7} {
		if slowest[i].LatencyMS != want {
			t.Errorf("slowest[%d] = %.0f ms, want %.0f", i, slowest[i].LatencyMS, want)
		}
	}
	for i := 0; i < 5; i++ {
		f.Observe(&RequestRecord{
			Trace:     fmt.Sprintf("f%d", i),
			LatencyMS: 0.1,
			State:     string(Failed),
		})
	}
	_, failed = f.Records()
	if len(failed) != 3 {
		t.Fatalf("failure ring holds %d, want 3", len(failed))
	}
	// Ring semantics: oldest evicted, newest retained.
	if failed[0].Trace != "f2" || failed[2].Trace != "f4" {
		t.Errorf("failure ring order: %s..%s, want f2..f4", failed[0].Trace, failed[2].Trace)
	}

	var nilRec *FlightRecorder
	nilRec.Observe(&RequestRecord{})
	if s, fl := nilRec.Len(); s != 0 || fl != 0 {
		t.Error("nil recorder retained records")
	}
}
