// Package server is faccd's hardened compile service: it accepts MiniC
// sources over HTTP, runs them through the FACC pipeline, and degrades
// gracefully instead of falling over. The robustness mechanisms, in the
// order a request meets them:
//
//   - Admission control: a bounded queue. When it is full the request is
//     shed immediately with 429 + Retry-After — the service stays
//     responsive under overload rather than accumulating unbounded work.
//   - Singleflight deduplication: requests with the same content digest
//     (facc.CompileRequest.Digest) attach to the in-flight job instead of
//     compiling twice.
//   - Memoization: completed adapters are served from the crash-safe
//     store (internal/store) without recompiling.
//   - Budgets: every job runs under the server's base context with a
//     per-request deadline, so one pathological source cannot pin a
//     worker forever.
//   - Graceful drain: on SIGTERM the daemon stops admitting (503 /
//     /readyz turns not-ready), finishes queued and in-flight jobs up to
//     a drain deadline, then hard-cancels stragglers via context.
//
// Endpoints (on top of the obshttp observability mux — /metrics,
// /status, /trace, /journal, /debug/pprof):
//
//	POST /compile         submit a compile job (JSON facc.CompileRequest);
//	                      202 + job id, or the finished job with ?wait=1
//	GET  /jobs/{id}       job status / result
//	GET  /cache/{digest}  direct adapter-cache lookup (fleet hedged reads)
//	GET  /healthz         process liveness (200 while the process runs)
//	GET  /readyz          admission readiness (503 while draining)
//
// Metrics: serve.jobs_admitted/_completed/_failed/_shed/_deduped,
// serve.cache_hits, serve.queue_depth, serve.workers_busy,
// serve.draining, serve.drain_hard_cancels and the serve.latency_ms
// histogram, all visible in /status (serve block) and /metrics.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"facc"
	"facc/internal/obs"
	"facc/internal/obs/obshttp"
	"facc/internal/store"
)

// CompileResult is what one job produces: a synthesized adapter, or a
// classified synthesis failure (FailReason), which is a valid outcome —
// not every function has an accelerator-shaped replacement.
type CompileResult struct {
	AdapterC   string
	Function   string
	Sig        string // user-visible signature of the replaced function
	FailReason string
}

// CompileFunc executes one admitted request. Tests substitute stubs; the
// daemon uses the facc-backed default.
type CompileFunc func(ctx context.Context, req facc.CompileRequest) (CompileResult, error)

// Config assembles a Server. Zero values get production defaults.
type Config struct {
	// QueueDepth bounds admitted-but-not-started jobs (default 64).
	// Requests beyond it are shed with 429.
	QueueDepth int
	// Workers is the number of concurrent compile workers (default
	// GOMAXPROCS).
	Workers int
	// RequestTimeout bounds one job's compile wall clock (default 2m).
	RequestTimeout time.Duration
	// Store, when non-nil, memoizes adapters across requests and
	// restarts.
	Store *store.Store
	// Tracer backs /metrics, /status and /trace. Required (New creates
	// one when nil).
	Tracer *obs.Tracer
	// Journal, when non-nil, records synthesis provenance served at
	// /journal.
	Journal *obs.Journal
	// Ledger, when non-nil, charges synthesis work to per-request
	// candidate accounts: /status gains the costs block, /metrics the
	// facc_ledger_* families, and flight records carry each retained
	// request's ledger slice.
	Ledger *obs.Ledger
	// Kills, when non-nil, records the search observatory per request:
	// /status gains the search block, /metrics the facc_search_*
	// families, and flight records carry each retained request's kill
	// events and funnel summary.
	Kills *obs.KillTable
	// Cex, when non-nil, is the daemon's read-write counterexample
	// pool: every compile replays its ranked discriminating inputs
	// first and records its kills into it live, so the pool reranks
	// continuously over the daemon's lifetime (the owner flushes it on
	// shutdown — no absorb step needed, live recording already counted
	// every kill).
	Cex *obs.CexPool
	// FlightRecorder bounds how many slowest and how many failed
	// requests are retained with full span trees and cost ledgers at
	// /debug/requests (default 32 per class; <0 disables).
	FlightRecorder int
	// SLOLatency is the per-request latency objective (default 1s): a
	// slower compile counts as an SLO violation.
	SLOLatency time.Duration
	// SLOObjective is the target success fraction (default 0.99): the
	// burn rate in /status and /metrics is the violation rate divided by
	// the error budget 1-SLOObjective.
	SLOObjective float64
	// Options is the standing compile configuration for the default
	// CompileFunc (workers, candidate timeout, fault profile, hardening).
	Options facc.Options
	// Compile overrides the facc-backed compile (tests).
	Compile CompileFunc
}

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle: Queued → Running → Done | Failed. Cached store hits are
// born Done.
const (
	Queued  JobState = "queued"
	Running JobState = "running"
	Done    JobState = "done"
	Failed  JobState = "failed"
)

// Job is one admitted compile. Fields are guarded by the server mutex;
// done closes when the job reaches a terminal state.
type Job struct {
	ID     string
	Key    string
	Trace  string // request trace ID; joins spans/journal/ledger/exemplars
	Req    facc.CompileRequest
	State  JobState
	Cached bool
	Result CompileResult
	Err    string

	enqueued time.Time
	done     chan struct{}
}

// Server is the compile service. Create with New, expose Handler, stop
// with Drain.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	obs     *obshttp.Server
	compile CompileFunc

	flight *FlightRecorder

	baseCtx    context.Context
	baseCancel context.CancelFunc

	queue chan *Job
	wg    sync.WaitGroup

	busy atomic.Int64
	// emaCompileMS is an exponential moving average of recent compile
	// execution times (float64 bits; excludes queue wait). It sizes the
	// Retry-After hint on shed requests.
	emaCompileMS atomic.Uint64

	mu       sync.Mutex
	draining bool
	jobs     map[string]*Job // by ID, bounded by history eviction
	active   map[string]*Job // by digest, queued or running
	history  []string        // terminal job IDs, oldest first
	nextID   int
}

// historyCap bounds how many finished jobs stay queryable at /jobs/{id};
// older ones are evicted so a long-lived daemon's memory stays flat.
const historyCap = 1024

// New builds the server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Minute
	}
	if cfg.Tracer == nil {
		cfg.Tracer = obs.New()
	}
	if cfg.SLOLatency <= 0 {
		cfg.SLOLatency = time.Second
	}
	if cfg.SLOObjective <= 0 || cfg.SLOObjective >= 1 {
		cfg.SLOObjective = 0.99
	}
	s := &Server{
		cfg:    cfg,
		reg:    cfg.Tracer.Metrics(),
		obs:    obshttp.New(cfg.Tracer, cfg.Journal, cfg.Ledger, cfg.Kills),
		queue:  make(chan *Job, cfg.QueueDepth),
		jobs:   map[string]*Job{},
		active: map[string]*Job{},
	}
	if cfg.FlightRecorder >= 0 {
		s.flight = NewFlightRecorder(cfg.FlightRecorder)
	}
	s.compile = cfg.Compile
	if s.compile == nil {
		s.compile = s.faccCompile
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.reg.Gauge("serve.queue_capacity").Set(float64(cfg.QueueDepth))
	s.reg.Gauge("serve.workers").Set(float64(cfg.Workers))
	s.reg.Gauge("serve.queue_depth").Set(0)
	s.reg.Gauge("serve.draining").Set(0)
	s.reg.Gauge("serve.slo_latency_ms").Set(float64(cfg.SLOLatency) / float64(time.Millisecond))
	s.reg.Gauge("serve.slo_objective").Set(cfg.SLOObjective)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// faccCompile is the production CompileFunc: the full pipeline with the
// server's standing options and shared tracer/journal.
func (s *Server) faccCompile(ctx context.Context, req facc.CompileRequest) (CompileResult, error) {
	opts := s.cfg.Options
	opts.Trace = s.cfg.Tracer
	opts.Journal = s.cfg.Journal
	opts.Ledger = s.cfg.Ledger
	opts.Kills = s.cfg.Kills
	opts.Cex = s.cfg.Cex
	res, err := facc.CompileRequestContext(ctx, req, opts)
	if err != nil {
		return CompileResult{}, err
	}
	if !res.OK() {
		return CompileResult{FailReason: res.FailReason()}, nil
	}
	return CompileResult{AdapterC: res.AdapterC(), Function: res.Function(), Sig: res.Sig()}, nil
}

// Handler returns the service mux: compile/job/health routes layered
// over the shared observability endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", s.handleCompile)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.HandleFunc("/cache/", s.handleCache)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	mux.Handle("/", s.obs.Handler())
	return mux
}

// handleDebugRequests dumps the flight recorder: the retained slowest and
// failed requests with their span trees, provenance and cost ledgers.
func (s *Server) handleDebugRequests(w http.ResponseWriter, _ *http.Request) {
	if s.flight == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	slowest, failed := s.flight.Records()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{
		"slo_latency_ms": float64(s.cfg.SLOLatency) / float64(time.Millisecond),
		"slo_objective":  s.cfg.SLOObjective,
		"slowest":        slowest,
		"failed":         failed,
	})
}

// handleCache answers a direct adapter-cache lookup by request digest:
// 200 with the finished job when the store has the adapter, 404
// otherwise. It exists for the fleet's hedged cache reads — a replica
// that does not own a digest can ask the owner (and, hedged, the next
// replica) whether the fleet has already compiled it, paying one small
// GET instead of a forwarded compile through the admission queue. A hit
// is registered as a cached job, so the returned ID resolves at
// /jobs/{id} like any other.
func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET /cache/{digest}", http.StatusMethodNotAllowed)
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/cache/")
	st := s.cfg.Store
	if key == "" || st == nil {
		http.Error(w, "no such cache entry", http.StatusNotFound)
		return
	}
	e, ok := st.Get(key)
	if !ok {
		http.Error(w, "no such cache entry", http.StatusNotFound)
		return
	}
	trace := r.Header.Get("X-Facc-Trace")
	if !obs.ValidTraceID(trace) {
		trace = obs.NewTraceID()
	}
	s.reg.Counter("serve.cache_hits").Inc()
	job := s.registerCached(key, trace, facc.CompileRequest{Target: e.Target}, e)
	w.Header().Set("X-Facc-Cache", "hit")
	s.respond(w, r, job)
}

// handleCompile admits one request: validate → cache → dedup → enqueue,
// shedding with 429 when the queue is full and 503 while draining.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a JSON compile request", http.StatusMethodNotAllowed)
		return
	}
	var req facc.CompileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := req.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key := req.Digest()

	// Every request carries a trace ID — the client's X-Facc-Trace when
	// supplied and well-formed, a fresh one otherwise. It is echoed in
	// the response header and stamps every span, journal event and
	// ledger charge the request causes. A hostile header (over-long or
	// outside [A-Za-z0-9._-]) is replaced, not propagated: the ID rides
	// verbatim in Prometheus exemplar lines, journal JSONL and persisted
	// store entries, all of which it could otherwise pollute. Deduped
	// requests adopt the in-flight job's ID (one compile, one trace).
	trace := r.Header.Get("X-Facc-Trace")
	if !obs.ValidTraceID(trace) {
		trace = obs.NewTraceID()
	}

	// Store first: a finished adapter needs no queue slot at all.
	if st := s.cfg.Store; st != nil {
		if e, ok := st.Get(key); ok {
			s.reg.Counter("serve.cache_hits").Inc()
			job := s.registerCached(key, trace, req, e)
			w.Header().Set("X-Facc-Cache", "hit")
			s.respond(w, r, job)
			return
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "10")
		http.Error(w, "draining: not admitting new work", http.StatusServiceUnavailable)
		return
	}
	if job, ok := s.active[key]; ok {
		s.mu.Unlock()
		s.reg.Counter("serve.jobs_deduped").Inc()
		w.Header().Set("X-Facc-Dedup", "true")
		s.respond(w, r, job)
		return
	}
	job := &Job{
		ID:       "j" + strconv.Itoa(s.nextID),
		Key:      key,
		Trace:    trace,
		Req:      req,
		State:    Queued,
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
	select {
	case s.queue <- job:
	default:
		s.mu.Unlock()
		s.reg.Counter("serve.jobs_shed").Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		http.Error(w, fmt.Sprintf("queue full (%d jobs): shedding load, retry later",
			s.cfg.QueueDepth), http.StatusTooManyRequests)
		return
	}
	s.nextID++
	s.jobs[job.ID] = job
	s.active[key] = job
	s.mu.Unlock()
	s.reg.Counter("serve.jobs_admitted").Inc()
	s.reg.Gauge("serve.queue_depth").Set(float64(len(s.queue)))
	s.respond(w, r, job)
}

// retryAfterSeconds estimates when a shed client will plausibly find a
// queue slot: the current backlog divided across the worker pool, paced
// by the moving average of recent compile times. A constant hint herds
// every shed client back at the same instant and re-sheds most of them;
// a depth-scaled hint spreads the retry wave to roughly when capacity
// exists. Clamped to [1, 60] so a pathological EMA cannot tell clients
// to wait forever (or to hammer).
func (s *Server) retryAfterSeconds() int {
	emaMS := math.Float64frombits(s.emaCompileMS.Load())
	if emaMS <= 0 {
		emaMS = 1000 // no completed compile yet: assume a second
	}
	backlog := len(s.queue) + int(s.busy.Load())
	secs := int(math.Ceil(float64(backlog) * emaMS / float64(s.cfg.Workers) / 1000))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// observeCompileTime folds one compile's execution time into the EMA
// behind Retry-After (α = 0.3: reactive to load shifts, stable against
// one outlier).
func (s *Server) observeCompileTime(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	for {
		old := s.emaCompileMS.Load()
		ema := math.Float64frombits(old)
		if ema <= 0 {
			ema = ms
		} else {
			ema = 0.7*ema + 0.3*ms
		}
		if s.emaCompileMS.CompareAndSwap(old, math.Float64bits(ema)) {
			s.reg.Gauge("serve.compile_ema_ms").Set(ema)
			return
		}
	}
}

// registerCached files a store hit as an already-done job so /jobs/{id}
// works uniformly.
func (s *Server) registerCached(key, trace string, req facc.CompileRequest, e store.Entry) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	job := &Job{
		ID:       "j" + strconv.Itoa(s.nextID),
		Key:      key,
		Trace:    trace,
		Req:      req,
		State:    Done,
		Cached:   true,
		Result:   CompileResult{AdapterC: e.AdapterC, Function: e.Function, Sig: e.Sig},
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
	s.nextID++
	s.jobs[job.ID] = job
	s.retire(job.ID)
	close(job.done)
	return job
}

// retire files a terminal job in the bounded history, evicting the
// oldest entry past historyCap. Caller holds s.mu.
func (s *Server) retire(id string) {
	s.history = append(s.history, id)
	if len(s.history) > historyCap {
		delete(s.jobs, s.history[0])
		s.history = s.history[1:]
	}
}

// worker drains the admission queue until Drain closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	busy := s.reg.Counter("serve.worker_jobs")
	for job := range s.queue {
		s.reg.Gauge("serve.queue_depth").Set(float64(len(s.queue)))
		busy.Inc()
		s.run(job)
	}
}

// run executes one job under the per-request budget and finalizes it.
func (s *Server) run(job *Job) {
	s.reg.Gauge("serve.workers_busy").Set(float64(s.busy.Add(1)))
	defer func() {
		s.reg.Gauge("serve.workers_busy").Set(float64(s.busy.Add(-1)))
	}()
	s.mu.Lock()
	job.State = Running
	s.mu.Unlock()

	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.RequestTimeout)
	ctx = obs.WithTraceID(ctx, job.Trace)
	started := time.Now()
	res, err := s.compile(ctx, job.Req)
	s.observeCompileTime(time.Since(started))
	cancel()

	s.mu.Lock()
	job.Result = res
	switch {
	case err != nil:
		job.State = Failed
		job.Err = err.Error()
	case res.FailReason != "":
		job.State = Failed
	default:
		job.State = Done
	}
	state := job.State
	s.mu.Unlock()

	// Persist before dropping the dedup registration: a same-digest
	// request arriving in between must find either the in-flight job or
	// the stored adapter, never a gap that recompiles.
	if state == Done {
		if st := s.cfg.Store; st != nil {
			st.Put(job.Key, store.Entry{
				Target:   job.Req.Target,
				Function: res.Function,
				Sig:      res.Sig,
				AdapterC: res.AdapterC,
				Trace:    job.Trace,
			})
		}
		s.reg.Counter("serve.jobs_completed").Inc()
	} else {
		s.reg.Counter("serve.jobs_failed").Inc()
	}
	s.mu.Lock()
	delete(s.active, job.Key)
	s.retire(job.ID)
	s.mu.Unlock()
	latMs := float64(time.Since(job.enqueued)) / float64(time.Millisecond)
	// The request's trace ID rides as the bucket's exemplar: a latency
	// spike in /metrics points at a concrete joinable request.
	s.reg.Histogram("serve.latency_ms", obs.DurationBucketsMs).
		ObserveExemplar(latMs, job.Trace)
	s.observeSLO(job, state, latMs)
	close(job.done)
}

// observeSLO books one executed job against the latency/error objective
// and retains it in the flight recorder. Failed jobs (including ones
// felled by injected accelerator faults) always enter the failure ring;
// every job competes for the slowest list.
func (s *Server) observeSLO(job *Job, state JobState, latMs float64) {
	violation := state == Failed ||
		latMs > float64(s.cfg.SLOLatency)/float64(time.Millisecond)
	total := s.reg.Counter("serve.slo_total")
	total.Inc()
	viol := s.reg.Counter("serve.slo_violations")
	if violation {
		viol.Inc()
	}
	// Burn rate: the fraction of the error budget (1-objective) the
	// observed violation rate consumes. >1 means the SLO is being missed.
	budget := 1 - s.cfg.SLOObjective
	if n := total.Value(); n > 0 && budget > 0 {
		rate := float64(viol.Value()) / float64(n)
		s.reg.Gauge("serve.slo_burn_rate").Set(rate / budget)
	}
	if s.flight == nil {
		return
	}
	s.mu.Lock()
	rec := &RequestRecord{
		Trace:        job.Trace,
		JobID:        job.ID,
		Digest:       job.Key,
		Target:       job.Req.Target,
		State:        string(state),
		Err:          job.Err,
		LatencyMS:    latMs,
		SLOViolation: violation,
	}
	s.mu.Unlock()
	rec.Spans = spanRecords(s.cfg.Tracer.TraceSpans(job.Trace))
	rec.Journal = s.cfg.Journal.TraceEvents(job.Trace)
	rec.Ledger = s.cfg.Ledger.TraceEntries(job.Trace)
	rec.Search = s.cfg.Kills.TraceSummary(job.Trace)
	rec.Kills = s.cfg.Kills.TraceEvents(job.Trace)
	s.flight.Observe(rec)
	slow, failed := s.flight.Len()
	s.reg.Gauge("serve.flight_retained").Set(float64(slow + failed))
}

// jobJSON is the wire form of a job.
type jobJSON struct {
	ID         string  `json:"id"`
	State      string  `json:"state"`
	Key        string  `json:"key"`
	Trace      string  `json:"trace,omitempty"`
	Target     string  `json:"target"`
	Function   string  `json:"function,omitempty"`
	Sig        string  `json:"sig,omitempty"`
	AdapterC   string  `json:"adapter_c,omitempty"`
	FailReason string  `json:"fail_reason,omitempty"`
	Error      string  `json:"error,omitempty"`
	Cached     bool    `json:"cached,omitempty"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

func (s *Server) jobView(job *Job) jobJSON {
	s.mu.Lock()
	defer s.mu.Unlock()
	return jobJSON{
		ID:         job.ID,
		State:      string(job.State),
		Key:        job.Key,
		Trace:      job.Trace,
		Target:     job.Req.Target,
		Function:   job.Result.Function,
		Sig:        job.Result.Sig,
		AdapterC:   job.Result.AdapterC,
		FailReason: job.Result.FailReason,
		Error:      job.Err,
		Cached:     job.Cached,
		ElapsedMS:  float64(time.Since(job.enqueued)) / float64(time.Millisecond),
	}
}

// respond writes the job's current state; with ?wait=1 it first blocks
// until the job finishes (or the client goes away, or drain hard-cancel
// fires — the job itself then reports what happened).
func (s *Server) respond(w http.ResponseWriter, r *http.Request, job *Job) {
	wait := r.URL.Query().Get("wait")
	if wait == "1" || wait == "true" {
		select {
		case <-job.done:
		case <-r.Context().Done():
			return // client gone; the job keeps running
		}
	}
	view := s.jobView(job)
	code := http.StatusOK
	if view.State == string(Queued) || view.State == string(Running) {
		code = http.StatusAccepted
		w.Header().Set("Location", "/jobs/"+job.ID)
	}
	if view.Trace != "" {
		w.Header().Set("X-Facc-Trace", view.Trace)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(view)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	s.respond(w, r, job)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

// Draining reports whether the server has stopped admitting work.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admitting work and waits for queued and in-flight jobs to
// finish. If ctx expires first, outstanding compiles are hard-cancelled
// through the base context (they finish promptly as Failed jobs — the
// pipeline is cancellation-aware end to end) and Drain reports the
// deadline error. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	first := !s.draining
	if first {
		s.draining = true
		s.reg.Gauge("serve.draining").Set(1)
		close(s.queue)
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		s.reg.Counter("serve.drain_hard_cancels").Inc()
		s.baseCancel()
		<-finished
		return fmt.Errorf("server: drain deadline: %w", ctx.Err())
	}
}

// ErrDraining marks rejected work during shutdown (exposed for clients
// embedding the server).
var ErrDraining = errors.New("server: draining")
