package rangecheck

import (
	"strings"
	"testing"
	"testing/quick"

	"facc/internal/accel"
	"facc/internal/analysis"
	"facc/internal/binding"
)

func candFor(spec *accel.Spec) *binding.Candidate {
	return &binding.Candidate{
		Spec:   spec,
		Length: binding.LengthBinding{Param: "n", Conv: binding.ConvIdentity},
	}
}

func TestBuildFullCheckWithoutProfile(t *testing.T) {
	c := Build(candFor(accel.NewFFTA()), nil)
	if !c.NeedPowerOfTwo || !c.NeedMin || !c.NeedMax {
		t.Errorf("check = %+v, want all constraints", c)
	}
	cond := c.CCondition("n")
	for _, want := range []string{"is_power_of_two(n)", "n >= 64", "n <= 65536"} {
		if !strings.Contains(cond, want) {
			t.Errorf("condition %q missing %q", cond, want)
		}
	}
}

func TestBuildMinimalCheckWithProfile(t *testing.T) {
	p := analysis.NewProfile()
	for _, v := range []int64{64, 256, 1024} {
		p.ObserveInt("n", v)
	}
	c := Build(candFor(accel.NewFFTA()), p)
	if !c.AlwaysTrue() {
		t.Errorf("profile proves domain; check = %q", c.CCondition("n"))
	}
	if c.CCondition("n") != "1" {
		t.Errorf("condition = %q, want 1", c.CCondition("n"))
	}
}

func TestBuildPartialCheck(t *testing.T) {
	// Profile spans beyond MaxN and includes non-powers of two.
	p := analysis.NewProfile()
	for _, v := range []int64{100, 70000} {
		p.ObserveInt("n", v)
	}
	c := Build(candFor(accel.NewFFTA()), p)
	if !c.NeedPowerOfTwo || !c.NeedMax {
		t.Errorf("check = %+v", c)
	}
	if c.NeedMin {
		t.Error("min constraint should be dropped (profile min 100 >= 64)")
	}
}

func TestPassSemantics(t *testing.T) {
	c := Build(candFor(accel.NewFFTA()), nil)
	cases := []struct {
		n    int64
		want bool
	}{
		{64, true}, {1024, true}, {65536, true},
		{32, false}, {100, false}, {131072, false}, {0, false}, {-8, false},
	}
	for _, tc := range cases {
		if got := c.Pass(tc.n, nil); got != tc.want {
			t.Errorf("Pass(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
}

func TestPassWithPins(t *testing.T) {
	cand := candFor(accel.NewFFTA())
	cand.Pins = []binding.ScalarPin{{Param: "inverse", Value: 0}}
	c := Build(cand, nil)
	if c.Pass(64, map[string]int64{"inverse": 1}) {
		t.Error("pinned scalar mismatch must fail")
	}
	if !c.Pass(64, map[string]int64{"inverse": 0}) {
		t.Error("pinned scalar match must pass")
	}
	if !strings.Contains(c.CCondition("n"), "inverse == 0") {
		t.Errorf("condition = %q", c.CCondition("n"))
	}
}

func TestExp2Conversion(t *testing.T) {
	cand := &binding.Candidate{
		Spec:   accel.NewFFTA(),
		Length: binding.LengthBinding{Param: "logn", Conv: binding.ConvExp2},
	}
	c := Build(cand, nil)
	if c.NeedPowerOfTwo {
		// Build without a profile keeps pow2... exp2 is pow2 by
		// construction only when the profile path runs; semantic Pass
		// must still work either way.
		_ = c
	}
	if !c.Pass(10, nil) { // 2^10 = 1024, in domain
		t.Error("Pass(logn=10) should hold")
	}
	if c.Pass(20, nil) { // 2^20 > 65536
		t.Error("Pass(logn=20) should fail (above MaxN)")
	}
	if c.Pass(3, nil) { // 2^3 < 64
		t.Error("Pass(logn=3) should fail (below MinN)")
	}
}

func TestConstantLength(t *testing.T) {
	cand := &binding.Candidate{
		Spec:   accel.NewFFTA(),
		Length: binding.LengthBinding{Const: 64},
	}
	c := Build(cand, nil)
	if !c.AlwaysTrue() {
		t.Errorf("constant 64 in domain; check = %+v", c)
	}
	bad := &binding.Candidate{
		Spec:   accel.NewFFTA(),
		Length: binding.LengthBinding{Const: 48},
	}
	c2 := Build(bad, nil)
	if c2.Pass(48, nil) {
		t.Error("constant 48 is not a power of two; Pass must fail")
	}
}

// Property (testing/quick): whenever the check passes, the converted
// length really is inside the accelerator's supported domain — the range
// check is sound by construction when built without profile narrowing.
func TestPropertyPassImpliesSupported(t *testing.T) {
	f := func(nRaw int32, pinVal int8, specIdx uint8) bool {
		spec := accel.Specs()[int(specIdx)%3]
		cand := &binding.Candidate{
			Spec:   spec,
			Length: binding.LengthBinding{Param: "n", Conv: binding.ConvIdentity},
			Pins:   []binding.ScalarPin{{Param: "flag", Value: int64(pinVal)}},
		}
		c := Build(cand, nil)
		n := int64(nRaw)
		scal := map[string]int64{"flag": int64(pinVal)}
		if c.Pass(n, scal) && !spec.Supports(int(n)) {
			return false
		}
		// Pin mismatch must always fail.
		if c.Pass(n, map[string]int64{"flag": int64(pinVal) + 1}) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
