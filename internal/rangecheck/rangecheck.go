// Package rangecheck synthesizes the domain-mismatch guard (paper §5.2):
// a predicate that admits exactly the inputs the accelerator supports,
// narrowed by value-profiling information about what the user code actually
// sees, with a fallback to the original software otherwise.
package rangecheck

import (
	"fmt"
	"strings"

	"facc/internal/accel"
	"facc/internal/analysis"
	"facc/internal/binding"
)

// Check is a synthesized input guard. It is both executable (Pass, used by
// the evaluation harness to route calls) and printable as C (CCondition).
type Check struct {
	Spec *accel.Spec

	// Length constraints (over the converted accelerator length).
	NeedPowerOfTwo bool
	NeedMin        bool
	MinN           int
	NeedMax        bool
	MaxN           int

	// Pins from behavioral specialization of user scalars.
	Pins []binding.ScalarPin

	// Conv is the user→accelerator length conversion.
	Conv binding.LengthConv
	// LengthParam names the user length variable ("" when constant).
	LengthParam string
	ConstLength int64
}

// Build synthesizes the minimal check for a candidate: constraints the
// profile proves always hold are omitted (the paper's "minimal possible
// check with the static information available", with value profiling
// standing in for static range analysis).
func Build(cand *binding.Candidate, profile *analysis.Profile) *Check {
	c := &Check{
		Spec:           cand.Spec,
		NeedPowerOfTwo: cand.Spec.PowerOfTwoOnly,
		NeedMin:        true,
		MinN:           cand.Spec.MinN,
		NeedMax:        true,
		MaxN:           cand.Spec.MaxN,
		Pins:           cand.Pins,
		Conv:           cand.Length.Conv,
		LengthParam:    cand.Length.Param,
		ConstLength:    cand.Length.Const,
	}
	if cand.Length.Param == "" {
		// Constant length: decide statically, once.
		n := cand.Length.Const
		c.NeedMin = n < int64(cand.Spec.MinN)
		c.NeedMax = n > int64(cand.Spec.MaxN)
		c.NeedPowerOfTwo = c.NeedPowerOfTwo && (n&(n-1)) != 0
		return c
	}
	if profile == nil {
		return c
	}
	if r := profile.Range(cand.Length.Param); r != nil && r.Count > 0 {
		lo, hi := c.Conv.Apply(r.Min), c.Conv.Apply(r.Max)
		if lo >= int64(cand.Spec.MinN) {
			c.NeedMin = false
		}
		if hi >= 0 && hi <= int64(cand.Spec.MaxN) {
			c.NeedMax = false
		}
		if r.AllPowersOfTwo && c.Conv == binding.ConvIdentity {
			c.NeedPowerOfTwo = false
		}
		if c.Conv == binding.ConvExp2 {
			// 1<<k is a power of two by construction.
			c.NeedPowerOfTwo = false
		}
	}
	return c
}

// Pass evaluates the check against a user length value and scalar values.
func (c *Check) Pass(userLen int64, scalars map[string]int64) bool {
	n := c.ConstLength
	if c.LengthParam != "" {
		n = userLen
	}
	an := c.Conv.Apply(n)
	if an <= 0 {
		return false
	}
	if c.NeedPowerOfTwo && an&(an-1) != 0 {
		return false
	}
	if c.NeedMin && an < int64(c.MinN) {
		return false
	}
	if c.NeedMax && an > int64(c.MaxN) {
		return false
	}
	for _, pin := range c.Pins {
		if scalars[pin.Param] != pin.Value {
			return false
		}
	}
	return true
}

// AlwaysTrue reports whether the check degenerated to a constant pass
// (profiling proved the whole domain safe and nothing is pinned).
func (c *Check) AlwaysTrue() bool {
	return !c.NeedPowerOfTwo && !c.NeedMin && !c.NeedMax && len(c.Pins) == 0
}

// CCondition renders the guard as a C boolean expression over the user's
// variables. lenExpr is the C expression for the accelerator length.
func (c *Check) CCondition(lenExpr string) string {
	var parts []string
	if c.NeedPowerOfTwo {
		parts = append(parts, fmt.Sprintf("is_power_of_two(%s)", lenExpr))
	}
	if c.NeedMin {
		parts = append(parts, fmt.Sprintf("%s >= %d", lenExpr, c.MinN))
	}
	if c.NeedMax {
		parts = append(parts, fmt.Sprintf("%s <= %d", lenExpr, c.MaxN))
	}
	for _, pin := range c.Pins {
		parts = append(parts, fmt.Sprintf("%s == %d", pin.Param, pin.Value))
	}
	if len(parts) == 0 {
		return "1"
	}
	return strings.Join(parts, " && ")
}
