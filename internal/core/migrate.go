package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"facc/internal/accel"
	"facc/internal/behave"
	"facc/internal/fft"
	"facc/internal/minic"
)

// This file implements the paper's closing direction (§10): "FACC can also
// be used to match optimized libraries to emerging hardware, e.g. matching
// FFTW to FFTA" — users who already restructured their code around a
// library keep benefiting from hardware evolution. The source "user code"
// is the library's own functional contract, so generate-and-test runs the
// two functional models against each other instead of interpreting C.

// Migration is a validated library→accelerator adapter.
type Migration struct {
	From *accel.Spec
	To   *accel.Spec

	// Post patches the target's output to match the source library.
	Post behave.PostOp
	// ForwardOnly is set when the source API exposes directions the
	// target lacks; the range check pins the direction parameter.
	ForwardOnly bool
	// MinN/MaxN/PowerOfTwoOnly describe the accelerated sub-domain
	// (outside it the adapter falls back to the original library).
	MinN           int
	MaxN           int
	PowerOfTwoOnly bool

	TestsPassed int
}

// MigrateLibrary synthesizes an adapter that implements the `from`
// library's API using the `to` accelerator, fuzz-validated on the overlap
// domain.
func MigrateLibrary(from, to *accel.Spec, numTests int, seed int64) (*Migration, error) {
	if numTests <= 0 {
		numTests = 10
	}
	mig := &Migration{
		From:           from,
		To:             to,
		ForwardOnly:    from.HasDirection && !to.HasDirection,
		MinN:           maxInt(from.MinN, to.MinN),
		MaxN:           minInt(from.MaxN, to.MaxN),
		PowerOfTwoOnly: from.PowerOfTwoOnly || to.PowerOfTwoOnly,
	}
	if mig.MinN > mig.MaxN {
		return nil, fmt.Errorf("core: %s and %s domains do not overlap", from.Name, to.Name)
	}

	// Fuzz sizes across the overlap, small first.
	var sizes []int
	for n := mig.MinN; n <= mig.MaxN && n <= 1024; n *= 2 {
		if !mig.PowerOfTwoOnly || n&(n-1) == 0 {
			sizes = append(sizes, n)
		}
	}
	if len(sizes) == 0 {
		sizes = []int{mig.MinN}
	}

	rng := rand.New(rand.NewSource(seed))
	alive := behave.Sketches()
	for i := 0; i < numTests; i++ {
		n := sizes[i%len(sizes)]
		in := make([]complex128, n)
		for j := range in {
			in[j] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want, err := from.Run(in, fft.Forward)
		if err != nil {
			return nil, err
		}
		got, err := to.Run(in, fft.Forward)
		if err != nil {
			return nil, err
		}
		var next []behave.PostOp
		for _, op := range alive {
			patched := append([]complex128(nil), got...)
			op.Apply(patched)
			if migClose(want, patched) {
				next = append(next, op)
			}
		}
		alive = next
		if len(alive) == 0 {
			return nil, fmt.Errorf("core: no behavioral patch makes %s match %s", to.Name, from.Name)
		}
	}
	mig.Post = alive[0]
	mig.TestsPassed = numTests
	return mig, nil
}

func migClose(a, b []complex128) bool {
	norm := 0.0
	for _, v := range a {
		if m := math.Hypot(real(v), imag(v)); m > norm {
			norm = m
		}
	}
	limit := 2e-3 * (1 + norm)
	for i := range a {
		d := a[i] - b[i]
		if math.Hypot(real(d), imag(d)) > limit {
			return false
		}
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// EmitC renders the migration as a drop-in replacement for the library
// call (same Figure 3 shape: range check, accelerator call, behavioral
// patch, library fallback).
func (m *Migration) EmitC() string {
	var b strings.Builder
	fromArgs := make([]string, 0, len(m.From.Params))
	var dirParam string
	for _, p := range m.From.Params {
		fromArgs = append(fromArgs, p.Name)
		if p.Role == accel.RoleDirection {
			dirParam = p.Name
		}
	}
	fmt.Fprintf(&b, "/* %s implemented via %s — synthesized by FACC (library migration).\n",
		m.From.CallName, m.To.CallName)
	fmt.Fprintf(&b, " * Validated by IO-equivalence on %d fuzzed inputs. */\n", m.TestsPassed)
	var sig []string
	for _, p := range m.From.Params {
		if p.Type.Kind == minic.TPointer {
			sig = append(sig, "float_complex* "+p.Name)
		} else {
			sig = append(sig, "int "+p.Name)
		}
	}
	fmt.Fprintf(&b, "void %s_accel(%s) {\n", m.From.CallName, strings.Join(sig, ", "))
	var conds []string
	if m.PowerOfTwoOnly {
		conds = append(conds, "is_power_of_two(length)")
	}
	conds = append(conds,
		fmt.Sprintf("length >= %d", m.MinN),
		fmt.Sprintf("length <= %d", m.MaxN))
	if m.ForwardOnly && dirParam != "" {
		conds = append(conds, fmt.Sprintf("%s == %d", dirParam, accel.FFTWForward))
	}
	fmt.Fprintf(&b, "    if (%s) {\n", strings.Join(conds, " && "))
	// Build the target call from its own parameter roles.
	var toArgs []string
	for _, p := range m.To.Params {
		switch p.Role {
		case accel.RoleInput:
			toArgs = append(toArgs, m.From.ParamByRole(accel.RoleInput).Name)
		case accel.RoleOutput:
			toArgs = append(toArgs, m.From.ParamByRole(accel.RoleOutput).Name)
		case accel.RoleLength:
			toArgs = append(toArgs, "length")
		case accel.RoleDirection:
			toArgs = append(toArgs, fmt.Sprintf("%d", accel.FFTWForward))
		case accel.RoleFlags:
			toArgs = append(toArgs, "0")
		}
	}
	fmt.Fprintf(&b, "        %s(%s);\n", m.To.CallName, strings.Join(toArgs, ", "))
	outName := m.From.ParamByRole(accel.RoleOutput).Name
	for _, line := range m.Post.CCode(outName, "length") {
		fmt.Fprintf(&b, "        %s\n", line)
	}
	fmt.Fprintf(&b, "    } else {\n")
	fmt.Fprintf(&b, "        %s(%s); /* fallback to the original library */\n",
		m.From.CallName, strings.Join(fromArgs, ", "))
	fmt.Fprintf(&b, "    }\n}\n")
	return b.String()
}
