package core

import (
	"strings"
	"testing"

	"facc/internal/accel"
	"facc/internal/behave"
)

func TestMigrateFFTWToFFTA(t *testing.T) {
	mig, err := MigrateLibrary(accel.NewFFTWLib(), accel.NewFFTA(), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// FFTW is un-normalized, the FFTA normalizes → denormalize patch.
	if mig.Post.Scale != behave.ScaleByN {
		t.Errorf("post = %s, want denormalize", mig.Post)
	}
	// FFTW exposes directions the FFTA lacks → forward-only pin.
	if !mig.ForwardOnly {
		t.Error("migration should be forward-only")
	}
	// The accelerated domain is the intersection.
	if mig.MinN != 64 || mig.MaxN != 65536 || !mig.PowerOfTwoOnly {
		t.Errorf("domain = [%d,%d] pow2=%v", mig.MinN, mig.MaxN, mig.PowerOfTwoOnly)
	}
	src := mig.EmitC()
	for _, w := range []string{
		"void fftw_call_accel(",
		"is_power_of_two(length)",
		"direction == -1",
		"accel_cfft(acc_input, acc_output, length);",
		"acc_output[__k].re *= (float)length;",
		"fftw_call(acc_input, acc_output, length, direction, flags); /* fallback",
	} {
		if !strings.Contains(src, w) {
			t.Errorf("emitted migration missing %q:\n%s", w, src)
		}
	}
}

func TestMigrateFFTWToPowerQuad(t *testing.T) {
	mig, err := MigrateLibrary(accel.NewFFTWLib(), accel.NewPowerQuad(), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Both un-normalized → identity patch.
	if !mig.Post.IsIdentity() {
		t.Errorf("post = %s, want identity", mig.Post)
	}
	if mig.MinN != 16 || mig.MaxN != 4096 {
		t.Errorf("domain = [%d,%d]", mig.MinN, mig.MaxN)
	}
}

func TestMigratePowerQuadToFFTA(t *testing.T) {
	// Hardware-to-hardware: PowerQuad API (un-normalized) on the FFTA.
	mig, err := MigrateLibrary(accel.NewPowerQuad(), accel.NewFFTA(), 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mig.Post.Scale != behave.ScaleByN {
		t.Errorf("post = %s", mig.Post)
	}
	if mig.ForwardOnly {
		t.Error("neither API has a direction parameter")
	}
	if mig.MinN != 64 || mig.MaxN != 4096 {
		t.Errorf("domain = [%d,%d]", mig.MinN, mig.MaxN)
	}
}
