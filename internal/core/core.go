// Package core orchestrates the FACC pipeline (paper Fig. 4): candidate
// detection with the neural classifier, value profiling, binding/range/
// behavioral synthesis, generate-and-test IO fuzzing, and C adapter
// emission. The root facc package re-exports this as the public API.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"facc/internal/accel"
	"facc/internal/analysis"
	"facc/internal/codegen"
	"facc/internal/gnn"
	"facc/internal/minic"
	"facc/internal/obs"
	"facc/internal/ojclone"
	"facc/internal/progml"
	"facc/internal/synth"
)

// Classifier wraps the trained GCN used for candidate detection. A nil
// Classifier makes the pipeline consider every function (pure
// generate-and-test, no search-space pruning).
type Classifier struct {
	Model    *gnn.GCN
	FFTClass int
	TopK     int // paper default: 3
}

// TrainClassifier builds the OJClone-style dataset and trains the
// ProGraML-based classifier with the paper's protocol.
func TrainClassifier(perClass int, seed int64) (*Classifier, error) {
	ds, err := ojclone.Build(perClass, seed)
	if err != nil {
		return nil, err
	}
	model := gnn.Fit(ds.Graphs, ds.NumClasses(), gnn.TrainConfig{Seed: seed})
	return &Classifier{Model: model, FFTClass: ds.FFTClass, TopK: 3}, nil
}

// CandidateFunctions returns the functions of f the classifier labels FFT
// within its top-k, most-confident first. Helper functions reachable only
// as callees of another candidate are filtered (the region rooted at the
// caller subsumes them).
func (c *Classifier) CandidateFunctions(f *minic.File) []string {
	type scored struct {
		name string
		p    float64
	}
	var out []scored
	for _, fn := range f.Funcs {
		if fn.Body == nil {
			continue
		}
		g := progml.BuildRegionGraph(f, fn)
		probs := c.Model.Predict(g)
		top := c.Model.TopK(g, c.TopK)
		for _, cls := range top {
			if cls == c.FFTClass {
				out = append(out, scored{fn.Name, probs[c.FFTClass]})
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].p != out[j].p {
			return out[i].p > out[j].p
		}
		return out[i].name < out[j].name
	})
	names := make([]string, len(out))
	for i, s := range out {
		names[i] = s.name
	}
	return names
}

// Options configures a compilation.
type Options struct {
	// Entry pins the function to compile; empty means "use the
	// classifier" (or all functions when no classifier is set).
	Entry string
	// ProfileValues is the value-profiling environment: observed values
	// per scalar parameter name.
	ProfileValues map[string][]int64
	// Synth forwards engine options (test count, tolerance, ablations).
	Synth synth.Options
	// Classifier used for candidate detection (may be nil).
	Classifier *Classifier
	// AllRegions compiles every candidate region instead of stopping at
	// the first success (Fig. 1 replaces each detected FFT).
	AllRegions bool
	// Trace, when non-nil, receives hierarchical spans for every pipeline
	// stage (parse, typecheck, classify, analyze, binding, per-candidate
	// fuzzing, codegen) plus interpreter/accelerator metrics. Nil disables
	// hot-path instrumentation entirely; stage timings are still measured
	// internally so Elapsed fields stay populated.
	Trace *obs.Tracer
	// Journal, when non-nil, records the synthesis provenance stream:
	// every candidate's lifecycle from emission through pruning, fuzz
	// verdict (with counterexample) and acceptance. Render it with
	// obs.Journal.WriteReport or export it as JSONL. Nil costs nothing.
	Journal *obs.Journal
	// Ledger, when non-nil, charges every interpreter test, interpreter
	// step and oracle lookup to a (function, candidate, target, verdict)
	// account, separating useful (winner) from speculative (loser) work.
	// Nil costs nothing on the hot path.
	Ledger *obs.Ledger
	// Kills, when non-nil, records the search observatory: every
	// non-survivor's kill event (discriminating IO case, mismatch kind,
	// binding family) and the per-function search funnel. Nil costs
	// nothing on the verdict path.
	Kills *obs.KillTable
}

// FunctionResult is the outcome for one candidate region.
type FunctionResult struct {
	Function string
	Result   *synth.Result
	AdapterC string // non-empty on success
	Elapsed  time.Duration
}

// Compilation is the outcome of compiling one translation unit to one
// target.
type Compilation struct {
	Target    *accel.Spec
	File      *minic.File
	Functions []*FunctionResult
	Elapsed   time.Duration
}

// Success returns the first successful function result, or nil.
func (c *Compilation) Success() *FunctionResult {
	for _, fr := range c.Functions {
		if fr.AdapterC != "" {
			return fr
		}
	}
	return nil
}

// FailReason summarizes why nothing compiled (Fig. 8 categories), or ""
// on success.
func (c *Compilation) FailReason() string {
	if c.Success() != nil {
		return ""
	}
	if len(c.Functions) == 0 {
		return "no-candidate-region"
	}
	// Report the most specific reason among candidates: printf/void*/
	// nested-memory beat generic interface incompatibility.
	reason := ""
	for _, fr := range c.Functions {
		r := fr.Result.FailReason
		switch r {
		case "printf", "void-pointer", "nested-memory":
			return r
		case "":
		default:
			if reason == "" {
				reason = r
			}
		}
	}
	if reason == "" {
		reason = "interface-incompatibility"
	}
	return reason
}

// BuildProfile converts an observed-values table into a Profile.
func BuildProfile(values map[string][]int64) *analysis.Profile {
	if values == nil {
		return nil
	}
	p := analysis.NewProfile()
	for name, vals := range values {
		for _, v := range vals {
			p.ObserveInt(name, v)
		}
	}
	return p
}

// CompileSource parses, checks and compiles MiniC source against a
// target. ctx (nil means Background) cancels the pipeline between and
// inside candidate evaluations.
func CompileSource(ctx context.Context, name, src string, spec *accel.Spec, opts Options) (*Compilation, error) {
	fsp := opts.Trace.Span("frontend").Str("file", name)
	psp := fsp.Child("parse")
	f, err := minic.Parse(name, src)
	psp.End()
	if err != nil {
		fsp.End()
		return nil, err
	}
	tsp := fsp.Child("typecheck")
	err = minic.Check(f)
	tsp.End()
	fsp.End()
	if err != nil {
		return nil, err
	}
	return CompileFile(ctx, f, spec, opts)
}

// CompileFile runs the pipeline on a checked file. All stage timings —
// including the Elapsed fields of the result — derive from tracer spans;
// when opts.Trace is nil a private tracer supplies them, and the per-test
// hot path inside synth runs uninstrumented. ctx (nil means Background)
// cancels the pipeline; the error then wraps ctx.Err().
func CompileFile(ctx context.Context, f *minic.File, spec *accel.Spec, opts Options) (*Compilation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	tr := opts.Trace
	traced := tr != nil
	if tr == nil {
		tr = obs.New() // timing-only fallback; never reaches the fuzz loop
	}
	if traced {
		spec.Instrument(tr.Metrics())
	}
	// A trace ID on the context scopes every span, journal line and
	// ledger charge of this compilation to the originating request.
	if trace := obs.TraceIDFrom(ctx); trace != "" {
		opts.Journal = opts.Journal.Scoped(trace)
		opts.Ledger = opts.Ledger.Scoped(trace)
		opts.Kills = opts.Kills.Scoped(trace)
	}
	root := tr.Span("compile").SetTrace(obs.TraceIDFrom(ctx)).
		Str("file", f.Name).Str("target", spec.Name)
	opts.Journal.Record(obs.JournalEvent{Kind: obs.KindCompile,
		Detail: f.Name + " → " + spec.Name})
	comp := &Compilation{Target: spec, File: f}

	csp := root.Child("classify")
	var candidates []string
	switch {
	case opts.Entry != "":
		candidates = []string{opts.Entry}
	case opts.Classifier != nil:
		candidates = opts.Classifier.CandidateFunctions(f)
	default:
		for _, fn := range f.Funcs {
			if fn.Body != nil {
				candidates = append(candidates, fn.Name)
			}
		}
	}
	csp.Int("candidates", int64(len(candidates))).End()

	profile := BuildProfile(opts.ProfileValues)
	for _, name := range candidates {
		if err := ctx.Err(); err != nil {
			root.End()
			return nil, fmt.Errorf("core: compilation cancelled: %w", err)
		}
		fn := f.Func(name)
		if fn == nil {
			root.End()
			return nil, fmt.Errorf("core: no function %q", name)
		}
		ssp := root.Child("synthesize").Str("function", name)
		sopts := opts.Synth
		sopts.Journal = opts.Journal
		sopts.Ledger = opts.Ledger
		sopts.Kills = opts.Kills
		if traced {
			sopts.Obs = ssp
		}
		res, err := synth.Synthesize(ctx, f, fn, spec, profile, sopts)
		if err != nil {
			ssp.End()
			root.End()
			return nil, err
		}
		fr := &FunctionResult{Function: name, Result: res}
		if res.Adapter != nil {
			gsp := ssp.Child("codegen")
			fr.AdapterC = codegen.Prelude() + codegen.Extern(spec) + "\n" +
				codegen.Emit(res.Adapter, fn)
			gsp.End()
		}
		fr.Elapsed = ssp.End()
		comp.Functions = append(comp.Functions, fr)
		outcome := "rejected"
		if fr.AdapterC != "" {
			outcome = "replaced"
		}
		opts.Journal.Record(obs.JournalEvent{Kind: obs.KindResult,
			Function: name, Outcome: outcome, Heuristic: res.FailReason})
		if fr.AdapterC != "" && !opts.AllRegions {
			break // drop-in replacement found; stop at the best candidate
		}
	}
	comp.Elapsed = root.End()
	return comp, nil
}

// TotalCandidates sums the binding candidates enumerated across every
// attempted function (the Fig. 16 search-space measure for the whole
// translation unit).
func (c *Compilation) TotalCandidates() int {
	n := 0
	for _, fr := range c.Functions {
		if fr.Result != nil {
			n += fr.Result.Candidates
		}
	}
	return n
}

// IntegratedUnit renders the whole application with acceleration woven in
// (paper Fig. 1): call sites of each replaced function are rewritten to
// its adapter, the originals stay (the fallback path needs them), and the
// adapters are appended. The result is a complete C translation unit.
func (c *Compilation) IntegratedUnit() (string, error) {
	successes := c.Successes()
	if len(successes) == 0 {
		return "", fmt.Errorf("core: nothing compiled; no unit to integrate")
	}
	// Re-parse for a private AST to mutate.
	f, err := minic.Parse(c.File.Name, minic.PrintFile(c.File))
	if err != nil {
		return "", fmt.Errorf("core: reprint: %w", err)
	}
	if err := minic.Check(f); err != nil {
		return "", fmt.Errorf("core: recheck: %w", err)
	}
	var adapters strings.Builder
	for _, s := range successes {
		codegen.RewriteCalls(f, s.Function, s.Function+"_accel")
		body := s.AdapterC
		// Strip the shared prelude from all but the first adapter.
		if adapters.Len() > 0 {
			if idx := strings.Index(body, "/* Drop-in replacement"); idx >= 0 {
				body = body[idx:]
			}
		}
		adapters.WriteString(body)
		adapters.WriteString("\n")
	}
	unit := minic.PrintFile(f) + "\n" + adapters.String()
	// The integrated unit must still be valid (prototypes for adapters
	// appear after their call sites, which MiniC resolves file-wide).
	if _, err := minic.ParseAndCheck(c.File.Name+".integrated", unit); err != nil {
		return "", fmt.Errorf("core: integrated unit invalid: %w", err)
	}
	return unit, nil
}

// Successes returns every function that compiled (AllRegions mode).
func (c *Compilation) Successes() []*FunctionResult {
	var out []*FunctionResult
	for _, fr := range c.Functions {
		if fr.AdapterC != "" {
			out = append(out, fr)
		}
	}
	return out
}
