package core

import (
	"context"
	"strings"
	"testing"

	"facc/internal/accel"
	"facc/internal/minic"
	"facc/internal/synth"
)

const dftSrc = `
#include <math.h>
typedef struct { double re; double im; } cpx;
void spectrum(cpx* x, int n) {
    cpx out[n];
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < n; j++) {
            double a = -2.0 * M_PI * (double)j * (double)k / (double)n;
            sre += x[j].re * cos(a) - x[j].im * sin(a);
            sim += x[j].re * sin(a) + x[j].im * cos(a);
        }
        out[k].re = sre;
        out[k].im = sim;
    }
    for (int k = 0; k < n; k++) x[k] = out[k];
}
void helper_scale(double* v, int n, double f) {
    for (int i = 0; i < n; i++) v[i] = v[i] * f;
}`

func TestCompileSourcePinnedEntry(t *testing.T) {
	comp, err := CompileSource(context.Background(), "t.c", dftSrc, accel.NewPowerQuad(), Options{
		Entry:         "spectrum",
		ProfileValues: map[string][]int64{"n": {16, 32, 64}},
		Synth:         synth.Options{NumTests: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := comp.Success()
	if s == nil {
		t.Fatalf("no success: %s", comp.FailReason())
	}
	if s.Function != "spectrum" {
		t.Errorf("function = %q", s.Function)
	}
	if !strings.Contains(s.AdapterC, "pq_cfft") {
		t.Error("adapter missing accelerator call")
	}
	if s.Elapsed <= 0 || comp.Elapsed < s.Elapsed {
		t.Error("timing bookkeeping wrong")
	}
}

func TestCompileAllFunctionsWithoutClassifier(t *testing.T) {
	// No Entry, no classifier: every function considered; generate-and-
	// test rejects helper_scale and accepts spectrum.
	comp, err := CompileSource(context.Background(), "t.c", dftSrc, accel.NewPowerQuad(), Options{
		ProfileValues: map[string][]int64{"n": {16, 32}},
		Synth:         synth.Options{NumTests: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := comp.Success()
	if s == nil || s.Function != "spectrum" {
		t.Fatalf("success = %+v", s)
	}
}

func TestCompileUnknownEntry(t *testing.T) {
	_, err := CompileSource(context.Background(), "t.c", dftSrc, accel.NewFFTA(), Options{Entry: "nope"})
	if err == nil || !strings.Contains(err.Error(), "no function") {
		t.Errorf("err = %v", err)
	}
}

func TestFailReasonPriority(t *testing.T) {
	src := `
typedef struct { double re; double im; } cpx;
void log_stuff(cpx* x, int n) {
    for (int i = 0; i < n; i++) printf("%f\n", x[i].re);
}
double plain(double* v, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) s += v[i];
    return s;
}`
	comp, err := CompileSource(context.Background(), "t.c", src, accel.NewFFTA(), Options{
		Synth: synth.Options{NumTests: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Success() != nil {
		t.Fatal("nothing should compile")
	}
	if got := comp.FailReason(); got != "printf" {
		t.Errorf("fail reason = %q, want printf (specific beats generic)", got)
	}
}

func TestBuildProfile(t *testing.T) {
	if BuildProfile(nil) != nil {
		t.Error("nil table should produce nil profile")
	}
	p := BuildProfile(map[string][]int64{"n": {64, 128}})
	r := p.Range("n")
	if r == nil || r.Min != 64 || r.Max != 128 || !r.AllPowersOfTwo {
		t.Errorf("profile range = %v", r)
	}
}

func TestClassifierCandidateOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	clf, err := TrainClassifier(12, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := minic.ParseAndCheck("t.c", dftSrc)
	if err != nil {
		t.Fatal(err)
	}
	cands := clf.CandidateFunctions(f)
	found := false
	for _, c := range cands {
		if c == "spectrum" {
			found = true
		}
	}
	if !found {
		t.Errorf("classifier missed the DFT: candidates = %v", cands)
	}
}

func TestNoCandidateRegion(t *testing.T) {
	comp, err := CompileSource(context.Background(), "t.c", "int unused;", accel.NewFFTA(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if comp.FailReason() != "no-candidate-region" {
		t.Errorf("fail reason = %q", comp.FailReason())
	}
}

func TestAllRegionsCompilesEveryFFT(t *testing.T) {
	src := `
#include <math.h>
typedef struct { double re; double im; } cpx;
void fwd_a(cpx* x, int n) {
    cpx out[n];
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < n; j++) {
            double a = -2.0 * M_PI * (double)j * (double)k / (double)n;
            sre += x[j].re * cos(a) - x[j].im * sin(a);
            sim += x[j].re * sin(a) + x[j].im * cos(a);
        }
        out[k].re = sre;
        out[k].im = sim;
    }
    for (int k = 0; k < n; k++) x[k] = out[k];
}
void fwd_b(cpx* in, cpx* out, int n) {
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < n; j++) {
            double a = -2.0 * M_PI * (double)j * (double)k / (double)n;
            sre += in[j].re * cos(a) - in[j].im * sin(a);
            sim += in[j].re * sin(a) + in[j].im * cos(a);
        }
        out[k].re = sre;
        out[k].im = sim;
    }
}`
	comp, err := CompileSource(context.Background(), "t.c", src, accel.NewPowerQuad(), Options{
		ProfileValues: map[string][]int64{"n": {16, 32}},
		Synth:         synth.Options{NumTests: 4},
		AllRegions:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	succ := comp.Successes()
	if len(succ) != 2 {
		names := []string{}
		for _, s := range succ {
			names = append(names, s.Function)
		}
		t.Fatalf("compiled %d regions (%v), want both fwd_a and fwd_b", len(succ), names)
	}
}

func TestIntegratedUnitRewritesCallSites(t *testing.T) {
	src := `
#include <math.h>
typedef struct { double re; double im; } cpx;
void fft(cpx* x, int n) {
    cpx out[n];
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < n; j++) {
            double a = -2.0 * M_PI * (double)j * (double)k / (double)n;
            sre += x[j].re * cos(a) - x[j].im * sin(a);
            sim += x[j].re * sin(a) + x[j].im * cos(a);
        }
        out[k].re = sre;
        out[k].im = sim;
    }
    for (int k = 0; k < n; k++) x[k] = out[k];
}
void process_block(cpx* buf, int n) {
    fft(buf, n);
    for (int i = 0; i < n; i++) {
        buf[i].re = buf[i].re * 0.5;
        buf[i].im = buf[i].im * 0.5;
    }
}`
	comp, err := CompileSource(context.Background(), "app.c", src, accel.NewPowerQuad(), Options{
		Entry:         "fft",
		ProfileValues: map[string][]int64{"n": {16, 32}},
		Synth:         synth.Options{NumTests: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if comp.Success() == nil {
		t.Fatalf("compile failed: %s", comp.FailReason())
	}
	unit, err := comp.IntegratedUnit()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(unit, "fft_accel(buf, n);") {
		t.Errorf("call site not rewritten:\n%s", unit)
	}
	// The original function must remain (the fallback path needs it)...
	if !strings.Contains(unit, "void fft(cpx *x, int n)") {
		t.Error("original function lost")
	}
	// ...and the adapter must never call itself via the rewritten name.
	if strings.Contains(unit, "fft_accel(x, n);\n    }\n}") &&
		!strings.Contains(unit, "fft(x, n);") {
		t.Error("fallback path was rewritten too")
	}
}

func TestIntegratedUnitFailsWithNothingCompiled(t *testing.T) {
	comp, err := CompileSource(context.Background(), "t.c", "int x;", accel.NewFFTA(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := comp.IntegratedUnit(); err == nil {
		t.Error("expected error for empty compilation")
	}
}
