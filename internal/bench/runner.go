package bench

import (
	"fmt"
	"math/rand"

	"facc/internal/analysis"
	"facc/internal/interp"
	"facc/internal/minic"
)

// Runner executes a benchmark's entry point in the MiniC interpreter —
// the "run the original software" side of the evaluation. A Runner keeps
// its machine across calls so implementations with memoized global state
// (project11) behave as they would in a real process.
type Runner struct {
	B       *Benchmark
	File    *minic.File
	Machine *interp.Machine
	entry   *minic.FuncDecl
}

// NewRunner parses, checks and loads the benchmark.
func NewRunner(b *Benchmark) (*Runner, error) {
	f, err := minic.ParseAndCheck(b.File, b.Source())
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	fn := f.Func(b.Entry)
	if fn == nil {
		return nil, fmt.Errorf("bench %s: entry %q not found", b.Name, b.Entry)
	}
	m, err := interp.NewMachine(f)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	return &Runner{B: b, File: f, Machine: m, entry: fn}, nil
}

// NewRunnerUnit loads b's driver against an arbitrary translation unit —
// e.g. the benchmark source combined with a synthesized adapter and a
// MiniC device model — and drives the function named entry, which must
// share the benchmark entry's signature (the adapter is a drop-in
// replacement, so "<entry>_accel" qualifies).
func NewRunnerUnit(b *Benchmark, name, source, entry string) (*Runner, error) {
	f, err := minic.ParseAndCheck(name, source)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	fn := f.Func(entry)
	if fn == nil {
		return nil, fmt.Errorf("bench %s: entry %q not found", b.Name, entry)
	}
	m, err := interp.NewMachine(f)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	return &Runner{B: b, File: f, Machine: m, entry: fn}, nil
}

// structOffsets returns the flattened (re, im) offsets for the custom
// struct layouts; every custom struct in the corpus declares real first.
func structOffsets() (int, int) { return 0, 1 }

// Run executes the benchmark on the input signal and returns the complex
// output. Counters accumulate on r.Machine (call r.Machine.Reset() first
// to measure a single run).
func (r *Runner) Run(input []complex128) ([]complex128, error) {
	if len(r.B.Driver) == 0 {
		return nil, fmt.Errorf("bench %s: no generic driver", r.B.Name)
	}
	n := len(input)
	m := r.Machine
	var args []interp.Value
	var outVal interp.Value
	outKind := ""
	var reArr, imArr interp.Value

	for i, tok := range r.B.Driver {
		prm := r.entry.Params[i]
		pt := prm.Type.Decay()
		switch tok {
		case "x", "in", "out", "scratch":
			arr, err := m.NewArray(prm.Name, pt.Elem, n)
			if err != nil {
				return nil, err
			}
			if tok == "x" || tok == "in" {
				if err := r.writeComplex(arr, input); err != nil {
					return nil, err
				}
			}
			if tok == "x" || tok == "out" {
				outVal = arr
				outKind = r.B.ComplexRepr
			}
			args = append(args, arr)
		case "re", "im":
			arr, err := m.NewArray(prm.Name, pt.Elem, n)
			if err != nil {
				return nil, err
			}
			vals := make([]float64, n)
			for j, c := range input {
				if tok == "re" {
					vals[j] = real(c)
				} else {
					vals[j] = imag(c)
				}
			}
			if err := m.SetFloatArray(arr, vals); err != nil {
				return nil, err
			}
			if tok == "re" {
				reArr = arr
			} else {
				imArr = arr
			}
			outKind = "split"
			args = append(args, arr)
		case "n":
			args = append(args, interp.IntValue(int64(n)))
		case "flag":
			args = append(args, interp.IntValue(0))
		default:
			return nil, fmt.Errorf("bench %s: unknown driver token %q", r.B.Name, tok)
		}
	}
	if _, err := m.Call(r.entry, args); err != nil {
		return nil, err
	}
	switch outKind {
	case "split":
		re, err := m.GetFloatArray(reArr, n)
		if err != nil {
			return nil, err
		}
		im, err := m.GetFloatArray(imArr, n)
		if err != nil {
			return nil, err
		}
		out := make([]complex128, n)
		for i := range out {
			out[i] = complex(re[i], im[i])
		}
		return out, nil
	case "c99":
		return m.GetComplexArray(outVal, n)
	default:
		reOff, imOff := structOffsets()
		return m.GetStructComplexArray(outVal, n, reOff, imOff)
	}
}

// writeComplex stores the signal through the benchmark's representation.
func (r *Runner) writeComplex(arr interp.Value, vals []complex128) error {
	switch r.B.ComplexRepr {
	case "c99":
		return r.Machine.SetComplexArray(arr, vals)
	default:
		reOff, imOff := structOffsets()
		return r.Machine.SetStructComplexArray(arr, vals, reOff, imOff)
	}
}

// MeasureCounters runs the benchmark once on input with fresh counters and
// returns the operation counts (the software-side performance model input).
func (r *Runner) MeasureCounters(input []complex128) (interp.Counters, error) {
	r.Machine.Reset()
	r.Machine.MaxSteps = 2_000_000_000
	if _, err := r.Run(input); err != nil {
		return interp.Counters{}, err
	}
	return r.Machine.Counters, nil
}

// newMachineForTest builds a machine for a checked file (test helper).
func newMachineForTest(f *minic.File) (*interp.Machine, error) {
	return interp.NewMachine(f)
}

// CollectProfile runs the benchmark's driver at the metadata sizes with
// value profiling attached — the paper's "value-profiling environment"
// built by execution rather than hand-written tables. The returned profile
// covers the entry's scalar parameters and everything observed inside.
func CollectProfile(b *Benchmark) (*analysis.Profile, error) {
	r, err := NewRunner(b)
	if err != nil {
		return nil, err
	}
	prof := analysis.NewProfile()
	prof.Attach(r.Machine)
	sizes := b.ProfileValues["n"]
	if len(sizes) == 0 {
		sizes = []int64{int64(b.PerfSize)}
	}
	rng := rand.New(rand.NewSource(int64(b.ID) + 1))
	for _, n := range sizes {
		if !b.SupportsSize(int(n)) || n > 512 {
			continue
		}
		in := make([]complex128, n)
		for i := range in {
			in[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		r.Machine.Reset()
		if _, err := r.Run(in); err != nil {
			return nil, err
		}
	}
	// Mode flags recorded in the metadata (the driver only exercises the
	// forward path; the table records what the app does elsewhere).
	for name, vals := range b.ProfileValues {
		if name == "n" {
			continue
		}
		for _, v := range vals {
			prof.ObserveInt(name, v)
		}
	}
	return prof, nil
}
