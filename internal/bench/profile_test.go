package bench

import (
	"testing"
)

func TestCollectProfileByExecution(t *testing.T) {
	b, err := ByName("iterdit")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := CollectProfile(b)
	if err != nil {
		t.Fatal(err)
	}
	r := prof.Range("n")
	if r == nil || r.Count == 0 {
		t.Fatal("entry length parameter not observed")
	}
	if !r.AllPowersOfTwo {
		t.Error("driver only passes powers of two; profile disagrees")
	}
	if r.Min < 64 || r.Max > 512 {
		t.Errorf("observed range %s outside driver sizes", r)
	}
	// Interior variables get profiled too (the interpreter observes
	// every integer assignment and call argument).
	if len(prof.Vars) < 2 {
		t.Errorf("expected interior observations, got %d vars", len(prof.Vars))
	}
}

func TestCollectProfileMergesFlagTable(t *testing.T) {
	b, err := ByName("table256")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := CollectProfile(b)
	if err != nil {
		t.Fatal(err)
	}
	r := prof.Range("inverse")
	if r == nil || !r.IsFlagLike() {
		t.Errorf("inverse flag not profiled: %v", r)
	}
}

func TestSupportsSize(t *testing.T) {
	b, _ := ByName("fixed64")
	if !b.SupportsSize(64) || b.SupportsSize(32) {
		t.Error("fixed64")
	}
	b, _ = ByName("bluestein")
	if !b.SupportsSize(17) || !b.SupportsSize(1000) || b.SupportsSize(0) {
		t.Error("all-lengths")
	}
}
