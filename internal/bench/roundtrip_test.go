package bench

import (
	"testing"

	"facc/internal/minic"
)

// TestCorpusPrintRoundTrip pushes every corpus program through the printer
// and back: PrintFile output must re-parse, re-check, and print
// identically (fixed point after one iteration). This exercises the
// frontend across the full diversity of the corpus.
func TestCorpusPrintRoundTrip(t *testing.T) {
	for _, b := range Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			f1, err := minic.ParseAndCheck(b.File, b.Source())
			if err != nil {
				t.Fatal(err)
			}
			printed := minic.PrintFile(f1)
			f2, err := minic.ParseAndCheck(b.File+".printed", printed)
			if err != nil {
				t.Fatalf("printed source rejected: %v", err)
			}
			if len(f2.Funcs) != len(f1.Funcs) {
				t.Fatalf("function count changed: %d -> %d", len(f1.Funcs), len(f2.Funcs))
			}
			printed2 := minic.PrintFile(f2)
			if printed != printed2 {
				t.Error("printer not idempotent on corpus program")
			}
		})
	}
}

// TestCorpusPrintedSemantics: the printed program must still compute the
// same transform (parse/print must not perturb semantics). Checked on a
// small supported subset to keep runtime bounded.
func TestCorpusPrintedSemantics(t *testing.T) {
	for _, name := range []string{"iterdit", "c99dit", "splitarrays"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		f, err := minic.ParseAndCheck(b.File, b.Source())
		if err != nil {
			t.Fatal(err)
		}
		printed := minic.PrintFile(f)
		// Swap the benchmark's source for its printed form via a runner
		// over the re-parsed file.
		clone := *b
		runOn := func(src string) []complex128 {
			t.Helper()
			f2, err := minic.ParseAndCheck("x.c", src)
			if err != nil {
				t.Fatal(err)
			}
			_ = f2
			r := mustRunnerFromSource(t, &clone, src)
			in := make([]complex128, 32)
			for i := range in {
				in[i] = complex(float64(i%5)-2, float64(i%3))
			}
			out, err := r.Run(in)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		orig := runOn(b.Source())
		rt := runOn(printed)
		for i := range orig {
			if orig[i] != rt[i] {
				t.Fatalf("%s: printed program diverges at [%d]", name, i)
			}
		}
	}
}

// mustRunnerFromSource builds a Runner over replacement source text.
func mustRunnerFromSource(t *testing.T, b *Benchmark, src string) *Runner {
	t.Helper()
	f, err := minic.ParseAndCheck(b.File, src)
	if err != nil {
		t.Fatal(err)
	}
	fn := f.Func(b.Entry)
	if fn == nil {
		t.Fatalf("entry %q lost in printing", b.Entry)
	}
	m, err := newMachineForTest(f)
	if err != nil {
		t.Fatal(err)
	}
	return &Runner{B: b, File: f, Machine: m, entry: fn}
}
