/*
 * project16 "dft20": a textbook O(n^2) DFT, out-of-place, C99 complex.
 * The kind of 20-line reference implementation that tops GitHub search
 * results (Table 1: DFT, no twiddle handling, no optimization).
 */
#include <complex.h>
#include <math.h>

void dft(double complex* in, double complex* out, int n) {
    for (int k = 0; k < n; k++) {
        double complex sum = 0.0;
        for (int j = 0; j < n; j++) {
            double angle = -2.0 * M_PI * (double)j * (double)k / (double)n;
            sum += in[j] * cexp(angle * I);
        }
        out[k] = sum;
    }
}
