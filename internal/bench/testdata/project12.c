/*
 * project12 "bluestein": FFT for arbitrary lengths. Powers of two run an
 * iterative radix-2 kernel; lengths with only factors 2 and 3 run a small
 * mixed-radix recursion; everything else (primes included) goes through
 * Bluestein's chirp-z algorithm built on the radix-2 kernel. Style notes
 * (Table 1): twiddles computed in the FFT, custom complex type, recursion
 * plus for loops, unrolled radix-2 butterflies in the pow2 kernel.
 */
#include <math.h>
#include <stdlib.h>

typedef struct {
    double re;
    double im;
} bcpx;

static int is_pow2_12(int n) {
    return n > 0 && (n & (n - 1)) == 0;
}

/* In-place iterative radix-2; sgn = -1 forward, +1 inverse. */
static void rad2_12(bcpx* x, int n, double sgn) {
    int j = 0;
    for (int i = 1; i < n; i++) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) {
            j ^= bit;
        }
        j |= bit;
        if (i < j) {
            bcpx t = x[i];
            x[i] = x[j];
            x[j] = t;
        }
    }
    for (int len = 2; len <= n; len <<= 1) {
        double ang = sgn * 2.0 * M_PI / (double)len;
        int half = len >> 1;
        for (int start = 0; start < n; start += len) {
            /* Unrolled k = 0 butterfly (twiddle is 1+0i). */
            bcpx a0 = x[start];
            bcpx b0 = x[start + half];
            x[start].re = a0.re + b0.re;
            x[start].im = a0.im + b0.im;
            x[start + half].re = a0.re - b0.re;
            x[start + half].im = a0.im - b0.im;
            for (int k = 1; k < half; k++) {
                double wr = cos(ang * (double)k);
                double wi = sin(ang * (double)k);
                bcpx a = x[start + k];
                bcpx b = x[start + k + half];
                double tr = b.re * wr - b.im * wi;
                double ti = b.re * wi + b.im * wr;
                x[start + k].re = a.re + tr;
                x[start + k].im = a.im + ti;
                x[start + k + half].re = a.re - tr;
                x[start + k + half].im = a.im - ti;
            }
        }
    }
}

/* Recursive radix-2/3 path for smooth non-power-of-two lengths. */
static int smooth23(int n) {
    while (n % 2 == 0) {
        n /= 2;
    }
    while (n % 3 == 0) {
        n /= 3;
    }
    return n == 1;
}

static void mixed23(bcpx* in, bcpx* out, int n, int stride) {
    if (n == 1) {
        out[0] = in[0];
        return;
    }
    int r = (n % 2 == 0) ? 2 : 3;
    int m = n / r;
    for (int q = 0; q < r; q++) {
        mixed23(in + q * stride, out + q * m, m, stride * r);
    }
    if (r == 2) {
        for (int k = 0; k < m; k++) {
            double ang = -2.0 * M_PI * (double)k / (double)n;
            double wr = cos(ang);
            double wi = sin(ang);
            double br = out[m + k].re * wr - out[m + k].im * wi;
            double bi = out[m + k].re * wi + out[m + k].im * wr;
            double ar = out[k].re;
            double ai = out[k].im;
            out[k].re = ar + br;
            out[k].im = ai + bi;
            out[m + k].re = ar - br;
            out[m + k].im = ai - bi;
        }
    } else {
        for (int k = 0; k < m; k++) {
            double ang = -2.0 * M_PI * (double)k / (double)n;
            double w1r = cos(ang);
            double w1i = sin(ang);
            double w2r = cos(2.0 * ang);
            double w2i = sin(2.0 * ang);
            double t0r = out[k].re;
            double t0i = out[k].im;
            double t1r = out[m + k].re * w1r - out[m + k].im * w1i;
            double t1i = out[m + k].re * w1i + out[m + k].im * w1r;
            double t2r = out[2 * m + k].re * w2r - out[2 * m + k].im * w2i;
            double t2i = out[2 * m + k].re * w2i + out[2 * m + k].im * w2r;
            double sr = t1r + t2r;
            double si = t1i + t2i;
            double dr = t1r - t2r;
            double di = t1i - t2i;
            out[k].re = t0r + sr;
            out[k].im = t0i + si;
            out[m + k].re = t0r - 0.5 * sr + 0.86602540378443864676 * di;
            out[m + k].im = t0i - 0.5 * si - 0.86602540378443864676 * dr;
            out[2 * m + k].re = t0r - 0.5 * sr - 0.86602540378443864676 * di;
            out[2 * m + k].im = t0i - 0.5 * si + 0.86602540378443864676 * dr;
        }
    }
}

/* Bluestein chirp-z: FFT of arbitrary n via convolution at size m. */
static void bluestein12(bcpx* in, bcpx* out, int n) {
    int m = 1;
    while (m < 2 * n - 1) {
        m <<= 1;
    }
    bcpx* a = (bcpx*)malloc(m * sizeof(bcpx));
    bcpx* b = (bcpx*)malloc(m * sizeof(bcpx));
    bcpx* chirp = (bcpx*)malloc(n * sizeof(bcpx));
    for (int k = 0; k < n; k++) {
        int k2 = (int)(((long)k * (long)k) % (long)(2 * n));
        double ang = -M_PI * (double)k2 / (double)n;
        chirp[k].re = cos(ang);
        chirp[k].im = sin(ang);
    }
    for (int i = 0; i < m; i++) {
        a[i].re = 0.0;
        a[i].im = 0.0;
        b[i].re = 0.0;
        b[i].im = 0.0;
    }
    for (int k = 0; k < n; k++) {
        a[k].re = in[k].re * chirp[k].re - in[k].im * chirp[k].im;
        a[k].im = in[k].re * chirp[k].im + in[k].im * chirp[k].re;
        b[k].re = chirp[k].re;
        b[k].im = -chirp[k].im;
    }
    for (int k = 1; k < n; k++) {
        b[m - k].re = chirp[k].re;
        b[m - k].im = -chirp[k].im;
    }
    rad2_12(a, m, -1.0);
    rad2_12(b, m, -1.0);
    for (int i = 0; i < m; i++) {
        double re = a[i].re * b[i].re - a[i].im * b[i].im;
        double im = a[i].re * b[i].im + a[i].im * b[i].re;
        a[i].re = re;
        a[i].im = im;
    }
    rad2_12(a, m, 1.0);
    double scale = 1.0 / (double)m;
    for (int k = 0; k < n; k++) {
        double re = a[k].re * scale;
        double im = a[k].im * scale;
        out[k].re = re * chirp[k].re - im * chirp[k].im;
        out[k].im = re * chirp[k].im + im * chirp[k].re;
    }
    free(chirp);
    free(b);
    free(a);
}

void fft_blue(bcpx* in, bcpx* out, int n) {
    if (n < 1) {
        return;
    }
    if (is_pow2_12(n)) {
        for (int i = 0; i < n; i++) {
            out[i] = in[i];
        }
        rad2_12(out, n, -1.0);
        return;
    }
    if (smooth23(n)) {
        mixed23(in, out, n, 1);
        return;
    }
    bluestein12(in, out, n);
}
