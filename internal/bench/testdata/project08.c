/*
 * project08 "c99dif": decimation-in-frequency radix-2 FFT over the C99
 * _Complex type. Style notes (Table 1): twiddles computed in the FFT via
 * cexp, C99 complex arithmetic, for loops, minimal optimization.
 */
#include <complex.h>
#include <math.h>

void fft_c99_dif(float complex* a, int n) {
    for (int len = n; len >= 2; len /= 2) {
        float complex w = cexpf(-2.0f * (float)M_PI * I / (float)len);
        for (int i = 0; i < n; i += len) {
            float complex tw = 1.0f;
            for (int k = 0; k < len / 2; k++) {
                float complex u = a[i + k];
                float complex v = a[i + k + len / 2];
                a[i + k] = u + v;
                a[i + k + len / 2] = (u - v) * tw;
                tw = tw * w;
            }
        }
    }
    /* Undo the bit-reversed ordering. */
    int j = 0;
    for (int i = 1; i < n; i++) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) {
            j ^= bit;
        }
        j |= bit;
        if (i < j) {
            float complex t = a[i];
            a[i] = a[j];
            a[j] = t;
        }
    }
}
