/*
 * project06 "smalldif": compact decimation-in-frequency radix-2 FFT that
 * leaves its output in BIT-REVERSED order — a deliberate behavioral
 * contract common in embedded DSP code whose consumers index the spectrum
 * through a reversal table. FACC's adapter must add a bit-reverse
 * post-behavioral patch. Style notes (Table 1): twiddles computed in the
 * stage loop, custom complex struct, for loops, minimal optimization.
 */
#include <math.h>

typedef struct {
    double x;
    double y;
} c64;

void fft_dif(c64* v, int n) {
    for (int len = n; len >= 2; len = len / 2) {
        double ang = -2.0 * M_PI / (double)len;
        for (int i = 0; i < n; i += len) {
            for (int k = 0; k < len / 2; k++) {
                double wr = cos(ang * (double)k);
                double wi = sin(ang * (double)k);
                c64 a = v[i + k];
                c64 b = v[i + k + len / 2];
                v[i + k].x = a.x + b.x;
                v[i + k].y = a.y + b.y;
                double dr = a.x - b.x;
                double di = a.y - b.y;
                v[i + k + len / 2].x = dr * wr - di * wi;
                v[i + k + len / 2].y = dr * wi + di * wr;
            }
        }
    }
    /* Results are intentionally left in bit-reversed order. */
}
