/*
 * project24 "rowplan" (UNSUPPORTED: nested memory structure).
 * Batch FFT over an array of row pointers (complex**). The nested
 * allocation structure (pointer-to-pointer) is outside FACC's binding
 * model.
 */
#include <complex.h>
#include <math.h>

static void one_row(double complex* x, int n) {
    int j = 0;
    for (int i = 1; i < n; i++) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) {
            j ^= bit;
        }
        j |= bit;
        if (i < j) {
            double complex t = x[i];
            x[i] = x[j];
            x[j] = t;
        }
    }
    for (int len = 2; len <= n; len <<= 1) {
        for (int start = 0; start < n; start += len) {
            for (int k = 0; k < len / 2; k++) {
                double complex w =
                    cexp(-2.0 * M_PI * I * (double)k / (double)len);
                double complex u = x[start + k];
                double complex v = x[start + k + len / 2] * w;
                x[start + k] = u + v;
                x[start + k + len / 2] = u - v;
            }
        }
    }
}

void fft_rows(double complex** rows, int nrows, int n) {
    for (int r = 0; r < nrows; r++) {
        one_row(rows[r], n);
    }
}
