/*
 * project13 "c99dit": decimation-in-time radix-2 FFT over C99 _Complex,
 * with twiddles computed per butterfly via cexp. Style notes (Table 1):
 * C99 complex representation, for loops, minimal optimization.
 */
#include <complex.h>
#include <math.h>

void fft_c99_dit(double complex* x, int n) {
    /* Bit-reversal permutation. */
    int j = 0;
    for (int i = 1; i < n; i++) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) {
            j ^= bit;
        }
        j |= bit;
        if (i < j) {
            double complex t = x[i];
            x[i] = x[j];
            x[j] = t;
        }
    }
    for (int len = 2; len <= n; len <<= 1) {
        for (int start = 0; start < n; start += len) {
            for (int k = 0; k < len / 2; k++) {
                double complex w =
                    cexp(-2.0 * M_PI * I * (double)k / (double)len);
                double complex u = x[start + k];
                double complex v = x[start + k + len / 2] * w;
                x[start + k] = u + v;
                x[start + k + len / 2] = u - v;
            }
        }
    }
}
