/*
 * project02 "recsplit": recursive radix-2 FFT with an explicit scratch
 * buffer. Style notes (Table 1): twiddles computed inside the recursion
 * with cos/sin, custom complex struct, for loops plus recursion, minimal
 * optimization.
 */
#include <math.h>

typedef struct {
    double re;
    double im;
} cplx2;

static void fft_step(cplx2* x, cplx2* tmp, int n, int stride) {
    if (n <= 1) {
        return;
    }
    int half = n / 2;
    /* Separate even and odd samples into the two halves. */
    for (int i = 0; i < half; i++) {
        tmp[i] = x[2 * i * stride];
        tmp[i + half] = x[(2 * i + 1) * stride];
    }
    for (int i = 0; i < n; i++) {
        x[i * stride] = tmp[i];
    }
    fft_step(x, tmp, half, stride);
    fft_step(x + half * stride, tmp, half, stride);
    for (int k = 0; k < half; k++) {
        double ang = -2.0 * M_PI * (double)k / (double)n;
        double wr = cos(ang);
        double wi = sin(ang);
        cplx2 even = x[k * stride];
        cplx2 odd = x[(k + half) * stride];
        double tr = odd.re * wr - odd.im * wi;
        double ti = odd.re * wi + odd.im * wr;
        tmp[k].re = even.re + tr;
        tmp[k].im = even.im + ti;
        tmp[k + half].re = even.re - tr;
        tmp[k + half].im = even.im - ti;
    }
    for (int i = 0; i < n; i++) {
        x[i * stride] = tmp[i];
    }
}

void fft_rec(cplx2* x, cplx2* scratch, int n) {
    fft_step(x, scratch, n, 1);
}
