/*
 * project04 "mixedunroll": out-of-place mixed-radix FFT handling any
 * length whose factors are 2, 3, 4 or 5 (with a DFT fallback for other
 * prime factors). Style notes (Table 1): every radix kernel is fully
 * unrolled by hand, twiddles computed inside the combine loops, custom
 * complex struct, recursion over decimated subsequences.
 */
#include <math.h>

typedef struct {
    double re;
    double im;
} fcplx;

/* Primitive roots used by the unrolled kernels. */
#define C3_RE -0.5
#define C3_IM -0.86602540378443864676
#define C5_RE1 0.30901699437494742410
#define C5_IM1 -0.95105651629515357212
#define C5_RE2 -0.80901699437494742410
#define C5_IM2 -0.58778525229247312917

static void dft_fallback(fcplx* in, fcplx* out, int n, int stride) {
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < n; j++) {
            double ang = -2.0 * M_PI * (double)((j * k) % n) / (double)n;
            double c = cos(ang);
            double s = sin(ang);
            sre += in[j * stride].re * c - in[j * stride].im * s;
            sim += in[j * stride].re * s + in[j * stride].im * c;
        }
        out[k].re = sre;
        out[k].im = sim;
    }
}

static void combine2(fcplx* out, int m) {
    int n = 2 * m;
    for (int k = 0; k < m; k++) {
        double ang = -2.0 * M_PI * (double)k / (double)n;
        double wr = cos(ang);
        double wi = sin(ang);
        double a_re = out[k].re;
        double a_im = out[k].im;
        double b_re = out[m + k].re * wr - out[m + k].im * wi;
        double b_im = out[m + k].re * wi + out[m + k].im * wr;
        out[k].re = a_re + b_re;
        out[k].im = a_im + b_im;
        out[m + k].re = a_re - b_re;
        out[m + k].im = a_im - b_im;
    }
}

static void combine3(fcplx* out, int m) {
    int n = 3 * m;
    for (int k = 0; k < m; k++) {
        double ang = -2.0 * M_PI * (double)k / (double)n;
        double w1r = cos(ang);
        double w1i = sin(ang);
        double w2r = cos(2.0 * ang);
        double w2i = sin(2.0 * ang);
        double t0r = out[k].re;
        double t0i = out[k].im;
        double t1r = out[m + k].re * w1r - out[m + k].im * w1i;
        double t1i = out[m + k].re * w1i + out[m + k].im * w1r;
        double t2r = out[2 * m + k].re * w2r - out[2 * m + k].im * w2i;
        double t2i = out[2 * m + k].re * w2i + out[2 * m + k].im * w2r;
        /* Unrolled 3-point butterfly. */
        double s1r = t1r + t2r;
        double s1i = t1i + t2i;
        double d1r = t1r - t2r;
        double d1i = t1i - t2i;
        out[k].re = t0r + s1r;
        out[k].im = t0i + s1i;
        out[m + k].re = t0r + C3_RE * s1r - C3_IM * d1i;
        out[m + k].im = t0i + C3_RE * s1i + C3_IM * d1r;
        out[2 * m + k].re = t0r + C3_RE * s1r + C3_IM * d1i;
        out[2 * m + k].im = t0i + C3_RE * s1i - C3_IM * d1r;
    }
}

static void combine4(fcplx* out, int m) {
    int n = 4 * m;
    for (int k = 0; k < m; k++) {
        double ang = -2.0 * M_PI * (double)k / (double)n;
        double w1r = cos(ang);
        double w1i = sin(ang);
        double w2r = cos(2.0 * ang);
        double w2i = sin(2.0 * ang);
        double w3r = cos(3.0 * ang);
        double w3i = sin(3.0 * ang);
        double t0r = out[k].re;
        double t0i = out[k].im;
        double t1r = out[m + k].re * w1r - out[m + k].im * w1i;
        double t1i = out[m + k].re * w1i + out[m + k].im * w1r;
        double t2r = out[2 * m + k].re * w2r - out[2 * m + k].im * w2i;
        double t2i = out[2 * m + k].re * w2i + out[2 * m + k].im * w2r;
        double t3r = out[3 * m + k].re * w3r - out[3 * m + k].im * w3i;
        double t3i = out[3 * m + k].re * w3i + out[3 * m + k].im * w3r;
        /* Unrolled 4-point butterfly (multiplies by -i folded in). */
        double a0r = t0r + t2r;
        double a0i = t0i + t2i;
        double a1r = t0r - t2r;
        double a1i = t0i - t2i;
        double a2r = t1r + t3r;
        double a2i = t1i + t3i;
        double a3r = t1r - t3r;
        double a3i = t1i - t3i;
        out[k].re = a0r + a2r;
        out[k].im = a0i + a2i;
        out[m + k].re = a1r + a3i;
        out[m + k].im = a1i - a3r;
        out[2 * m + k].re = a0r - a2r;
        out[2 * m + k].im = a0i - a2i;
        out[3 * m + k].re = a1r - a3i;
        out[3 * m + k].im = a1i + a3r;
    }
}

static void combine5(fcplx* out, int m) {
    int n = 5 * m;
    for (int k = 0; k < m; k++) {
        double ang = -2.0 * M_PI * (double)k / (double)n;
        double w1r = cos(ang);
        double w1i = sin(ang);
        double w2r = cos(2.0 * ang);
        double w2i = sin(2.0 * ang);
        double w3r = cos(3.0 * ang);
        double w3i = sin(3.0 * ang);
        double w4r = cos(4.0 * ang);
        double w4i = sin(4.0 * ang);
        double t0r = out[k].re;
        double t0i = out[k].im;
        double t1r = out[m + k].re * w1r - out[m + k].im * w1i;
        double t1i = out[m + k].re * w1i + out[m + k].im * w1r;
        double t2r = out[2 * m + k].re * w2r - out[2 * m + k].im * w2i;
        double t2i = out[2 * m + k].re * w2i + out[2 * m + k].im * w2r;
        double t3r = out[3 * m + k].re * w3r - out[3 * m + k].im * w3i;
        double t3i = out[3 * m + k].re * w3i + out[3 * m + k].im * w3r;
        double t4r = out[4 * m + k].re * w4r - out[4 * m + k].im * w4i;
        double t4i = out[4 * m + k].re * w4i + out[4 * m + k].im * w4r;
        /* Unrolled 5-point butterfly using sum/difference symmetry. */
        double s14r = t1r + t4r;
        double s14i = t1i + t4i;
        double d14r = t1r - t4r;
        double d14i = t1i - t4i;
        double s23r = t2r + t3r;
        double s23i = t2i + t3i;
        double d23r = t2r - t3r;
        double d23i = t2i - t3i;
        out[k].re = t0r + s14r + s23r;
        out[k].im = t0i + s14i + s23i;
        out[m + k].re = t0r + C5_RE1 * s14r + C5_RE2 * s23r
            - C5_IM1 * d14i - C5_IM2 * d23i;
        out[m + k].im = t0i + C5_RE1 * s14i + C5_RE2 * s23i
            + C5_IM1 * d14r + C5_IM2 * d23r;
        out[2 * m + k].re = t0r + C5_RE2 * s14r + C5_RE1 * s23r
            - C5_IM2 * d14i + C5_IM1 * d23i;
        out[2 * m + k].im = t0i + C5_RE2 * s14i + C5_RE1 * s23i
            + C5_IM2 * d14r - C5_IM1 * d23r;
        out[3 * m + k].re = t0r + C5_RE2 * s14r + C5_RE1 * s23r
            + C5_IM2 * d14i - C5_IM1 * d23i;
        out[3 * m + k].im = t0i + C5_RE2 * s14i + C5_RE1 * s23i
            - C5_IM2 * d14r + C5_IM1 * d23r;
        out[4 * m + k].re = t0r + C5_RE1 * s14r + C5_RE2 * s23r
            + C5_IM1 * d14i + C5_IM2 * d23i;
        out[4 * m + k].im = t0i + C5_RE1 * s14i + C5_RE2 * s23i
            - C5_IM1 * d14r - C5_IM2 * d23r;
    }
}

static int pick_radix(int n) {
    if (n % 4 == 0) {
        return 4;
    }
    if (n % 2 == 0) {
        return 2;
    }
    if (n % 3 == 0) {
        return 3;
    }
    if (n % 5 == 0) {
        return 5;
    }
    return 0;
}

static void fft_rad(fcplx* in, fcplx* out, int n, int stride) {
    if (n == 1) {
        out[0] = in[0];
        return;
    }
    int r = pick_radix(n);
    if (r == 0) {
        dft_fallback(in, out, n, stride);
        return;
    }
    int m = n / r;
    for (int q = 0; q < r; q++) {
        fft_rad(in + q * stride, out + q * m, m, stride * r);
    }
    if (r == 2) {
        combine2(out, m);
    } else if (r == 3) {
        combine3(out, m);
    } else if (r == 4) {
        combine4(out, m);
    } else {
        combine5(out, m);
    }
}

void fft_mixed(fcplx* in, fcplx* out, int n) {
    fft_rad(in, out, n, 1);
}
