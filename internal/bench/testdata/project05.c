/*
 * project05 "handopt": heavily hand-optimized in-place mixed-radix FFT in
 * the style of performance-tuned GitHub DSP libraries. Style notes
 * (Table 1): twiddle factors precomputed into malloc'd tables before the
 * transform, pointer-arithmetic inner loops, fully unrolled leaf kernels
 * for 2/3/4/5/8-point transforms, two-way unrolled ("hand-vectorized")
 * combine loops with scalar tails, custom complex type.
 */
#include <math.h>
#include <stdlib.h>

typedef struct {
    double re;
    double im;
} cx;

/* ---- unrolled leaf kernels (strided input, contiguous output) ---- */

static void leaf2(cx* in, cx* out, int stride) {
    double a_re = in[0].re;
    double a_im = in[0].im;
    double b_re = in[stride].re;
    double b_im = in[stride].im;
    out[0].re = a_re + b_re;
    out[0].im = a_im + b_im;
    out[1].re = a_re - b_re;
    out[1].im = a_im - b_im;
}

static void leaf3(cx* in, cx* out, int stride) {
    double t0r = in[0].re;
    double t0i = in[0].im;
    double t1r = in[stride].re;
    double t1i = in[stride].im;
    double t2r = in[2 * stride].re;
    double t2i = in[2 * stride].im;
    double sr = t1r + t2r;
    double si = t1i + t2i;
    double dr = t1r - t2r;
    double di = t1i - t2i;
    out[0].re = t0r + sr;
    out[0].im = t0i + si;
    out[1].re = t0r - 0.5 * sr + 0.86602540378443864676 * di;
    out[1].im = t0i - 0.5 * si - 0.86602540378443864676 * dr;
    out[2].re = t0r - 0.5 * sr - 0.86602540378443864676 * di;
    out[2].im = t0i - 0.5 * si + 0.86602540378443864676 * dr;
}

static void leaf4(cx* in, cx* out, int stride) {
    double t0r = in[0].re;
    double t0i = in[0].im;
    double t1r = in[stride].re;
    double t1i = in[stride].im;
    double t2r = in[2 * stride].re;
    double t2i = in[2 * stride].im;
    double t3r = in[3 * stride].re;
    double t3i = in[3 * stride].im;
    double a0r = t0r + t2r;
    double a0i = t0i + t2i;
    double a1r = t0r - t2r;
    double a1i = t0i - t2i;
    double a2r = t1r + t3r;
    double a2i = t1i + t3i;
    double a3r = t1r - t3r;
    double a3i = t1i - t3i;
    out[0].re = a0r + a2r;
    out[0].im = a0i + a2i;
    out[1].re = a1r + a3i;
    out[1].im = a1i - a3r;
    out[2].re = a0r - a2r;
    out[2].im = a0i - a2i;
    out[3].re = a1r - a3i;
    out[3].im = a1i + a3r;
}

static void leaf5(cx* in, cx* out, int stride) {
    double t0r = in[0].re;
    double t0i = in[0].im;
    double t1r = in[stride].re;
    double t1i = in[stride].im;
    double t2r = in[2 * stride].re;
    double t2i = in[2 * stride].im;
    double t3r = in[3 * stride].re;
    double t3i = in[3 * stride].im;
    double t4r = in[4 * stride].re;
    double t4i = in[4 * stride].im;
    double s14r = t1r + t4r;
    double s14i = t1i + t4i;
    double d14r = t1r - t4r;
    double d14i = t1i - t4i;
    double s23r = t2r + t3r;
    double s23i = t2i + t3i;
    double d23r = t2r - t3r;
    double d23i = t2i - t3i;
    out[0].re = t0r + s14r + s23r;
    out[0].im = t0i + s14i + s23i;
    out[1].re = t0r + 0.30901699437494742410 * s14r - 0.80901699437494742410 * s23r
        + 0.95105651629515357212 * d14i + 0.58778525229247312917 * d23i;
    out[1].im = t0i + 0.30901699437494742410 * s14i - 0.80901699437494742410 * s23i
        - 0.95105651629515357212 * d14r - 0.58778525229247312917 * d23r;
    out[2].re = t0r - 0.80901699437494742410 * s14r + 0.30901699437494742410 * s23r
        + 0.58778525229247312917 * d14i - 0.95105651629515357212 * d23i;
    out[2].im = t0i - 0.80901699437494742410 * s14i + 0.30901699437494742410 * s23i
        - 0.58778525229247312917 * d14r + 0.95105651629515357212 * d23r;
    out[3].re = t0r - 0.80901699437494742410 * s14r + 0.30901699437494742410 * s23r
        - 0.58778525229247312917 * d14i + 0.95105651629515357212 * d23i;
    out[3].im = t0i - 0.80901699437494742410 * s14i + 0.30901699437494742410 * s23i
        + 0.58778525229247312917 * d14r - 0.95105651629515357212 * d23r;
    out[4].re = t0r + 0.30901699437494742410 * s14r - 0.80901699437494742410 * s23r
        - 0.95105651629515357212 * d14i - 0.58778525229247312917 * d23i;
    out[4].im = t0i + 0.30901699437494742410 * s14i - 0.80901699437494742410 * s23i
        + 0.95105651629515357212 * d14r + 0.58778525229247312917 * d23r;
}

static void leaf8(cx* in, cx* out, int stride) {
    /* Two unrolled 4-point transforms plus an unrolled combine. */
    cx even[4];
    cx odd[4];
    leaf4(in, even, 2 * stride);
    leaf4(in + stride, odd, 2 * stride);
    double w1r = 0.70710678118654752440;
    double w1i = -0.70710678118654752440;
    double t0r = odd[0].re;
    double t0i = odd[0].im;
    double t1r = odd[1].re * w1r - odd[1].im * w1i;
    double t1i = odd[1].re * w1i + odd[1].im * w1r;
    double t2r = odd[2].im;
    double t2i = -odd[2].re;
    double t3r = -odd[3].re * w1r - odd[3].im * w1i;
    double t3i = odd[3].re * w1i - odd[3].im * w1r;
    out[0].re = even[0].re + t0r;
    out[0].im = even[0].im + t0i;
    out[4].re = even[0].re - t0r;
    out[4].im = even[0].im - t0i;
    out[1].re = even[1].re + t1r;
    out[1].im = even[1].im + t1i;
    out[5].re = even[1].re - t1r;
    out[5].im = even[1].im - t1i;
    out[2].re = even[2].re + t2r;
    out[2].im = even[2].im + t2i;
    out[6].re = even[2].re - t2r;
    out[6].im = even[2].im - t2i;
    out[3].re = even[3].re + t3r;
    out[3].im = even[3].im + t3i;
    out[7].re = even[3].re - t3r;
    out[7].im = even[3].im - t3i;
}

static void leaf16(cx* in, cx* out, int stride) {
    /* Two unrolled 8-point transforms plus a fully unrolled 16-point
     * combine with constant twiddles. */
    cx even[8];
    cx odd[8];
    leaf8(in, even, 2 * stride);
    leaf8(in + stride, odd, 2 * stride);

    double t1r = odd[1].re * 0.92387953251128674 + odd[1].im * 0.38268343236508978;
    double t1i = -odd[1].re * 0.38268343236508978 + odd[1].im * 0.92387953251128674;
    double t2r = odd[2].re * 0.70710678118654752 + odd[2].im * 0.70710678118654752;
    double t2i = -odd[2].re * 0.70710678118654752 + odd[2].im * 0.70710678118654752;
    double t3r = odd[3].re * 0.38268343236508978 + odd[3].im * 0.92387953251128674;
    double t3i = -odd[3].re * 0.92387953251128674 + odd[3].im * 0.38268343236508978;
    double t4r = odd[4].im;
    double t4i = -odd[4].re;
    double t5r = -odd[5].re * 0.38268343236508978 + odd[5].im * 0.92387953251128674;
    double t5i = -odd[5].re * 0.92387953251128674 - odd[5].im * 0.38268343236508978;
    double t6r = -odd[6].re * 0.70710678118654752 + odd[6].im * 0.70710678118654752;
    double t6i = -odd[6].re * 0.70710678118654752 - odd[6].im * 0.70710678118654752;
    double t7r = -odd[7].re * 0.92387953251128674 + odd[7].im * 0.38268343236508978;
    double t7i = -odd[7].re * 0.38268343236508978 - odd[7].im * 0.92387953251128674;

    out[0].re = even[0].re + odd[0].re;
    out[0].im = even[0].im + odd[0].im;
    out[8].re = even[0].re - odd[0].re;
    out[8].im = even[0].im - odd[0].im;
    out[1].re = even[1].re + t1r;
    out[1].im = even[1].im + t1i;
    out[9].re = even[1].re - t1r;
    out[9].im = even[1].im - t1i;
    out[2].re = even[2].re + t2r;
    out[2].im = even[2].im + t2i;
    out[10].re = even[2].re - t2r;
    out[10].im = even[2].im - t2i;
    out[3].re = even[3].re + t3r;
    out[3].im = even[3].im + t3i;
    out[11].re = even[3].re - t3r;
    out[11].im = even[3].im - t3i;
    out[4].re = even[4].re + t4r;
    out[4].im = even[4].im + t4i;
    out[12].re = even[4].re - t4r;
    out[12].im = even[4].im - t4i;
    out[5].re = even[5].re + t5r;
    out[5].im = even[5].im + t5i;
    out[13].re = even[5].re - t5r;
    out[13].im = even[5].im - t5i;
    out[6].re = even[6].re + t6r;
    out[6].im = even[6].im + t6i;
    out[14].re = even[6].re - t6r;
    out[14].im = even[6].im - t6i;
    out[7].re = even[7].re + t7r;
    out[7].im = even[7].im + t7i;
    out[15].re = even[7].re - t7r;
    out[15].im = even[7].im - t7i;
}

/* ---- table-driven combine stages ---- */

/*
 * Twiddle tables for the whole transform: tw_re[k], tw_im[k] hold
 * exp(-2*pi*i*k/n). A combine at block size L indexes them with step n/L.
 */
static void combine2t(cx* out, int m, int step, double* tw_re, double* tw_im) {
    cx* p = out;
    cx* q = out + m;
    int k = 0;
    /* Two-way unrolled main loop. */
    for (; k + 1 < m; k += 2) {
        double w0r = tw_re[k * step];
        double w0i = tw_im[k * step];
        double w1r = tw_re[(k + 1) * step];
        double w1i = tw_im[(k + 1) * step];
        double b0r = q[0].re * w0r - q[0].im * w0i;
        double b0i = q[0].re * w0i + q[0].im * w0r;
        double b1r = q[1].re * w1r - q[1].im * w1i;
        double b1i = q[1].re * w1i + q[1].im * w1r;
        double a0r = p[0].re;
        double a0i = p[0].im;
        double a1r = p[1].re;
        double a1i = p[1].im;
        p[0].re = a0r + b0r;
        p[0].im = a0i + b0i;
        q[0].re = a0r - b0r;
        q[0].im = a0i - b0i;
        p[1].re = a1r + b1r;
        p[1].im = a1i + b1i;
        q[1].re = a1r - b1r;
        q[1].im = a1i - b1i;
        p += 2;
        q += 2;
    }
    /* Scalar tail. */
    for (; k < m; k++) {
        double wr = tw_re[k * step];
        double wi = tw_im[k * step];
        double br = q->re * wr - q->im * wi;
        double bi = q->re * wi + q->im * wr;
        double ar = p->re;
        double ai = p->im;
        p->re = ar + br;
        p->im = ai + bi;
        q->re = ar - br;
        q->im = ai - bi;
        p++;
        q++;
    }
}

static void combine3t(cx* out, int m, int step, double* tw_re, double* tw_im) {
    cx* p0 = out;
    cx* p1 = out + m;
    cx* p2 = out + 2 * m;
    for (int k = 0; k < m; k++) {
        double w1r = tw_re[k * step];
        double w1i = tw_im[k * step];
        double w2r = tw_re[2 * k * step];
        double w2i = tw_im[2 * k * step];
        double t0r = p0->re;
        double t0i = p0->im;
        double t1r = p1->re * w1r - p1->im * w1i;
        double t1i = p1->re * w1i + p1->im * w1r;
        double t2r = p2->re * w2r - p2->im * w2i;
        double t2i = p2->re * w2i + p2->im * w2r;
        double sr = t1r + t2r;
        double si = t1i + t2i;
        double dr = t1r - t2r;
        double di = t1i - t2i;
        p0->re = t0r + sr;
        p0->im = t0i + si;
        p1->re = t0r - 0.5 * sr + 0.86602540378443864676 * di;
        p1->im = t0i - 0.5 * si - 0.86602540378443864676 * dr;
        p2->re = t0r - 0.5 * sr - 0.86602540378443864676 * di;
        p2->im = t0i - 0.5 * si + 0.86602540378443864676 * dr;
        p0++;
        p1++;
        p2++;
    }
}

static void combine4t(cx* out, int m, int step, double* tw_re, double* tw_im) {
    cx* p0 = out;
    cx* p1 = out + m;
    cx* p2 = out + 2 * m;
    cx* p3 = out + 3 * m;
    for (int k = 0; k < m; k++) {
        double w1r = tw_re[k * step];
        double w1i = tw_im[k * step];
        double w2r = tw_re[2 * k * step];
        double w2i = tw_im[2 * k * step];
        double w3r = tw_re[3 * k * step];
        double w3i = tw_im[3 * k * step];
        double t0r = p0->re;
        double t0i = p0->im;
        double t1r = p1->re * w1r - p1->im * w1i;
        double t1i = p1->re * w1i + p1->im * w1r;
        double t2r = p2->re * w2r - p2->im * w2i;
        double t2i = p2->re * w2i + p2->im * w2r;
        double t3r = p3->re * w3r - p3->im * w3i;
        double t3i = p3->re * w3i + p3->im * w3r;
        double a0r = t0r + t2r;
        double a0i = t0i + t2i;
        double a1r = t0r - t2r;
        double a1i = t0i - t2i;
        double a2r = t1r + t3r;
        double a2i = t1i + t3i;
        double a3r = t1r - t3r;
        double a3i = t1i - t3i;
        p0->re = a0r + a2r;
        p0->im = a0i + a2i;
        p1->re = a1r + a3i;
        p1->im = a1i - a3r;
        p2->re = a0r - a2r;
        p2->im = a0i - a2i;
        p3->re = a1r - a3i;
        p3->im = a1i + a3r;
        p0++;
        p1++;
        p2++;
        p3++;
    }
}

static void combine5t(cx* out, int m, int step, double* tw_re, double* tw_im) {
    cx* p0 = out;
    cx* p1 = out + m;
    cx* p2 = out + 2 * m;
    cx* p3 = out + 3 * m;
    cx* p4 = out + 4 * m;
    for (int k = 0; k < m; k++) {
        double w1r = tw_re[k * step];
        double w1i = tw_im[k * step];
        double w2r = tw_re[2 * k * step];
        double w2i = tw_im[2 * k * step];
        double w3r = tw_re[3 * k * step];
        double w3i = tw_im[3 * k * step];
        double w4r = tw_re[4 * k * step];
        double w4i = tw_im[4 * k * step];
        double t0r = p0->re;
        double t0i = p0->im;
        double t1r = p1->re * w1r - p1->im * w1i;
        double t1i = p1->re * w1i + p1->im * w1r;
        double t2r = p2->re * w2r - p2->im * w2i;
        double t2i = p2->re * w2i + p2->im * w2r;
        double t3r = p3->re * w3r - p3->im * w3i;
        double t3i = p3->re * w3i + p3->im * w3r;
        double t4r = p4->re * w4r - p4->im * w4i;
        double t4i = p4->re * w4i + p4->im * w4r;
        double s14r = t1r + t4r;
        double s14i = t1i + t4i;
        double d14r = t1r - t4r;
        double d14i = t1i - t4i;
        double s23r = t2r + t3r;
        double s23i = t2i + t3i;
        double d23r = t2r - t3r;
        double d23i = t2i - t3i;
        p0->re = t0r + s14r + s23r;
        p0->im = t0i + s14i + s23i;
        p1->re = t0r + 0.30901699437494742410 * s14r - 0.80901699437494742410 * s23r
            + 0.95105651629515357212 * d14i + 0.58778525229247312917 * d23i;
        p1->im = t0i + 0.30901699437494742410 * s14i - 0.80901699437494742410 * s23i
            - 0.95105651629515357212 * d14r - 0.58778525229247312917 * d23r;
        p2->re = t0r - 0.80901699437494742410 * s14r + 0.30901699437494742410 * s23r
            + 0.58778525229247312917 * d14i - 0.95105651629515357212 * d23i;
        p2->im = t0i - 0.80901699437494742410 * s14i + 0.30901699437494742410 * s23i
            - 0.58778525229247312917 * d14r + 0.95105651629515357212 * d23r;
        p3->re = t0r - 0.80901699437494742410 * s14r + 0.30901699437494742410 * s23r
            - 0.58778525229247312917 * d14i + 0.95105651629515357212 * d23i;
        p3->im = t0i - 0.80901699437494742410 * s14i + 0.30901699437494742410 * s23i
            + 0.58778525229247312917 * d14r - 0.95105651629515357212 * d23r;
        p4->re = t0r + 0.30901699437494742410 * s14r - 0.80901699437494742410 * s23r
            - 0.95105651629515357212 * d14i - 0.58778525229247312917 * d23i;
        p4->im = t0i + 0.30901699437494742410 * s14i - 0.80901699437494742410 * s23i
            + 0.95105651629515357212 * d14r + 0.58778525229247312917 * d23r;
        p0++;
        p1++;
        p2++;
        p3++;
        p4++;
    }
}

static void dft_slow(cx* in, cx* out, int n, int stride) {
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        cx* p = in;
        for (int j = 0; j < n; j++) {
            double ang = -2.0 * M_PI * (double)((j * k) % n) / (double)n;
            double c = cos(ang);
            double s = sin(ang);
            sre += p->re * c - p->im * s;
            sim += p->re * s + p->im * c;
            p += stride;
        }
        out[k].re = sre;
        out[k].im = sim;
    }
}

static void fft_core(cx* in, cx* out, int n, int stride, int full_n,
                     double* tw_re, double* tw_im) {
    if (n == 1) {
        out[0] = in[0];
        return;
    }
    if (n == 2) {
        leaf2(in, out, stride);
        return;
    }
    if (n == 3) {
        leaf3(in, out, stride);
        return;
    }
    if (n == 4) {
        leaf4(in, out, stride);
        return;
    }
    if (n == 5) {
        leaf5(in, out, stride);
        return;
    }
    if (n == 8) {
        leaf8(in, out, stride);
        return;
    }
    if (n == 16) {
        leaf16(in, out, stride);
        return;
    }
    int r = 0;
    if (n % 4 == 0) {
        r = 4;
    } else if (n % 2 == 0) {
        r = 2;
    } else if (n % 3 == 0) {
        r = 3;
    } else if (n % 5 == 0) {
        r = 5;
    } else {
        dft_slow(in, out, n, stride);
        return;
    }
    int m = n / r;
    for (int q = 0; q < r; q++) {
        fft_core(in + q * stride, out + q * m, m, stride * r, full_n, tw_re, tw_im);
    }
    int step = full_n / n;
    if (r == 2) {
        combine2t(out, m, step, tw_re, tw_im);
    } else if (r == 3) {
        combine3t(out, m, step, tw_re, tw_im);
    } else if (r == 4) {
        combine4t(out, m, step, tw_re, tw_im);
    } else {
        combine5t(out, m, step, tw_re, tw_im);
    }
}

void fft_opt(cx* data, int n) {
    if (n <= 1) {
        return;
    }
    /* Precompute the full twiddle tables for this size. */
    double* tw_re = (double*)malloc(n * sizeof(double));
    double* tw_im = (double*)malloc(n * sizeof(double));
    for (int k = 0; k < n; k++) {
        double ang = -2.0 * M_PI * (double)k / (double)n;
        tw_re[k] = cos(ang);
        tw_im[k] = sin(ang);
    }
    cx* work = (cx*)malloc(n * sizeof(cx));
    fft_core(data, work, n, 1, n, tw_re, tw_im);
    cx* src = work;
    cx* dst = data;
    for (int i = 0; i < n; i++) {
        *dst = *src;
        dst++;
        src++;
    }
    free(work);
    free(tw_re);
    free(tw_im);
}
