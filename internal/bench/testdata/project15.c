/*
 * project15 "purerec": purely recursive FFT over C99 complex supporting
 * any length: even lengths split radix-2, odd lengths fall back to a
 * recursive DFT formulation. Style notes (Table 1): recursion only (no
 * iterative stages), twiddles computed via cexp, C99 complex, minimal
 * optimization.
 */
#include <complex.h>
#include <math.h>
#include <stdlib.h>

static void rec15(double complex* x, int n, int stride, double complex* out) {
    if (n == 1) {
        out[0] = x[0];
        return;
    }
    if (n % 2 == 0) {
        int half = n / 2;
        rec15(x, half, 2 * stride, out);
        rec15(x + stride, half, 2 * stride, out + half);
        for (int k = 0; k < half; k++) {
            double complex w = cexp(-2.0 * M_PI * I * (double)k / (double)n);
            double complex even = out[k];
            double complex odd = out[k + half] * w;
            out[k] = even + odd;
            out[k + half] = even - odd;
        }
        return;
    }
    /* Odd length: direct transform of the strided sequence. */
    for (int k = 0; k < n; k++) {
        double complex sum = 0.0;
        for (int j = 0; j < n; j++) {
            sum += x[j * stride] *
                cexp(-2.0 * M_PI * I * (double)((j * k) % n) / (double)n);
        }
        out[k] = sum;
    }
}

void fft_recursive(double complex* buf, int n) {
    double complex* out = (double complex*)malloc(n * sizeof(double complex));
    rec15(buf, n, 1, out);
    for (int i = 0; i < n; i++) {
        buf[i] = out[i];
    }
    free(out);
}
