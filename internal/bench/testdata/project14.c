/*
 * project14 "splitarrays": MiBench-style radix-2 FFT over SEPARATE real
 * and imaginary arrays (no complex type at all). Style notes (Table 1):
 * twiddles computed in the FFT with sin/cos, for loops, minimal
 * optimization. This is the corpus's data-mismatch stress test: the
 * adapter must gather/scatter between split arrays and the accelerator's
 * interleaved format.
 */
#include <math.h>

static int bit_count(int n) {
    int bits = 0;
    for (int m = n; m > 1; m >>= 1) {
        bits++;
    }
    return bits;
}

static int reverse_index(int i, int bits) {
    int rev = 0;
    for (int b = 0; b < bits; b++) {
        rev = (rev << 1) | (i & 1);
        i >>= 1;
    }
    return rev;
}

void fft_split(double* re, double* im, int n) {
    int bits = bit_count(n);
    for (int i = 0; i < n; i++) {
        int r = reverse_index(i, bits);
        if (i < r) {
            double tr = re[i];
            double ti = im[i];
            re[i] = re[r];
            im[i] = im[r];
            re[r] = tr;
            im[r] = ti;
        }
    }
    for (int len = 2; len <= n; len <<= 1) {
        int half = len / 2;
        double ang = -2.0 * M_PI / (double)len;
        for (int start = 0; start < n; start += len) {
            for (int k = 0; k < half; k++) {
                double wr = cos(ang * (double)k);
                double wi = sin(ang * (double)k);
                int top = start + k;
                int bot = start + k + half;
                double tr = re[bot] * wr - im[bot] * wi;
                double ti = re[bot] * wi + im[bot] * wr;
                double ar = re[top];
                double ai = im[top];
                re[top] = ar + tr;
                im[top] = ai + ti;
                re[bot] = ar - tr;
                im[bot] = ai - ti;
            }
        }
    }
}
