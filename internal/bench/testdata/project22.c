/*
 * project22 "voidkind" (UNSUPPORTED: void* pointer).
 * A framework-style dispatch function: void* buffers plus a transform-kind
 * selector. Type erasure defeats binding synthesis.
 */
#include <math.h>

typedef struct {
    float re;
    float im;
} vc22;

static void kernel22(vc22* x, int n) {
    for (int len = n; len >= 2; len /= 2) {
        double ang = -2.0 * M_PI / (double)len;
        for (int i = 0; i < n; i += len) {
            for (int k = 0; k < len / 2; k++) {
                double wr = cos(ang * (double)k);
                double wi = sin(ang * (double)k);
                vc22 a = x[i + k];
                vc22 b = x[i + k + len / 2];
                x[i + k].re = a.re + b.re;
                x[i + k].im = a.im + b.im;
                double dr = a.re - b.re;
                double di = a.im - b.im;
                x[i + k + len / 2].re = (float)(dr * wr - di * wi);
                x[i + k + len / 2].im = (float)(dr * wi + di * wr);
            }
        }
    }
    int j = 0;
    for (int i = 1; i < n; i++) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) {
            j ^= bit;
        }
        j |= bit;
        if (i < j) {
            vc22 t = x[i];
            x[i] = x[j];
            x[j] = t;
        }
    }
}

int transform(void* in, void* out, int n, int kind) {
    if (kind != 0) {
        return -1; /* only the complex FFT kind is implemented */
    }
    vc22* src = (vc22*)in;
    vc22* dst = (vc22*)out;
    for (int i = 0; i < n; i++) {
        dst[i] = src[i];
    }
    kernel22(dst, n);
    return 0;
}
