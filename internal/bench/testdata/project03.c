/*
 * project03 "iterdit": iterative decimation-in-time radix-2 FFT.
 * Style notes (Table 1): twiddles computed inside the stage loop via a
 * complex-multiply recurrence (one cos/sin per stage), custom complex
 * struct, plain for loops, minimal optimization.
 */
#include <math.h>

struct complex_t {
    double real;
    double imag;
};

static int ilog2(int n) {
    int bits = 0;
    for (int m = n; m > 1; m = m / 2) {
        bits++;
    }
    return bits;
}

static void bitrev_permute(struct complex_t* x, int n) {
    int bits = ilog2(n);
    for (int i = 0; i < n; i++) {
        int rev = 0;
        int v = i;
        for (int b = 0; b < bits; b++) {
            rev = (rev << 1) | (v & 1);
            v = v >> 1;
        }
        if (i < rev) {
            struct complex_t t = x[i];
            x[i] = x[rev];
            x[rev] = t;
        }
    }
}

void fft_iter(struct complex_t* x, int n) {
    bitrev_permute(x, n);
    for (int len = 2; len <= n; len = len * 2) {
        double ang = -2.0 * M_PI / (double)len;
        /* Twiddle recurrence: w *= step each iteration of k. */
        double step_r = cos(ang);
        double step_i = sin(ang);
        for (int start = 0; start < n; start += len) {
            double wr = 1.0;
            double wi = 0.0;
            for (int k = 0; k < len / 2; k++) {
                struct complex_t a = x[start + k];
                struct complex_t b = x[start + k + len / 2];
                double tr = b.real * wr - b.imag * wi;
                double ti = b.real * wi + b.imag * wr;
                x[start + k].real = a.real + tr;
                x[start + k].imag = a.imag + ti;
                x[start + k + len / 2].real = a.real - tr;
                x[start + k + len / 2].imag = a.imag - ti;
                double nwr = wr * step_r - wi * step_i;
                wi = wr * step_i + wi * step_r;
                wr = nwr;
            }
        }
    }
}
