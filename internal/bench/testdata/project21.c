/*
 * project21 "voidgeneric" (UNSUPPORTED: void* pointer).
 * A "generic" FFT that takes its buffer as void* plus an element size —
 * the type information FACC needs is erased, so no binding is generated.
 */
#include <math.h>

typedef struct {
    double re;
    double im;
} vc21;

void fft_generic(void* data, int n, int elem_size) {
    if (elem_size != 16) {
        return; /* only double-pair elements supported */
    }
    vc21* x = (vc21*)data;
    int j = 0;
    for (int i = 1; i < n; i++) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) {
            j ^= bit;
        }
        j |= bit;
        if (i < j) {
            vc21 t = x[i];
            x[i] = x[j];
            x[j] = t;
        }
    }
    for (int len = 2; len <= n; len <<= 1) {
        double ang = -2.0 * M_PI / (double)len;
        for (int start = 0; start < n; start += len) {
            for (int k = 0; k < len / 2; k++) {
                double wr = cos(ang * (double)k);
                double wi = sin(ang * (double)k);
                vc21 a = x[start + k];
                vc21 b = x[start + k + len / 2];
                double tr = b.re * wr - b.im * wi;
                double ti = b.re * wi + b.im * wr;
                x[start + k].re = a.re + tr;
                x[start + k].im = a.im + ti;
                x[start + k + len / 2].re = a.re - tr;
                x[start + k + len / 2].im = a.im - ti;
            }
        }
    }
}
