/*
 * project11 "memotw": mixed-radix FFT (radices 2 and 3, DFT fallback) that
 * MEMOIZES its twiddle tables in globals between calls — recomputed only
 * when the transform size changes. Style notes (Table 1): precomputed
 * (cached) twiddles, custom complex, do-while and for loops.
 */
#include <math.h>
#include <stdlib.h>

typedef struct {
    double re;
    double im;
} cplx11;

#define MEMO_MAX 4096

static double memo_re[MEMO_MAX];
static double memo_im[MEMO_MAX];
static int memo_n = 0;

static void ensure_twiddles(int n) {
    if (memo_n == n) {
        return; /* cache hit: tables already match this size */
    }
    int k = 0;
    do {
        double ang = -2.0 * M_PI * (double)k / (double)n;
        memo_re[k] = cos(ang);
        memo_im[k] = sin(ang);
        k++;
    } while (k < n);
    memo_n = n;
}

static void core11(cplx11* in, cplx11* out, int n, int stride, int full_n) {
    if (n == 1) {
        out[0] = in[0];
        return;
    }
    int r;
    if (n % 2 == 0) {
        r = 2;
    } else if (n % 3 == 0) {
        r = 3;
    } else {
        /* Prime tail: direct DFT with on-the-fly angles. */
        for (int k = 0; k < n; k++) {
            double sre = 0.0;
            double sim = 0.0;
            for (int j = 0; j < n; j++) {
                double ang = -2.0 * M_PI * (double)((j * k) % n) / (double)n;
                sre += in[j * stride].re * cos(ang) - in[j * stride].im * sin(ang);
                sim += in[j * stride].re * sin(ang) + in[j * stride].im * cos(ang);
            }
            out[k].re = sre;
            out[k].im = sim;
        }
        return;
    }
    int m = n / r;
    for (int q = 0; q < r; q++) {
        core11(in + q * stride, out + q * m, m, stride * r, full_n);
    }
    int step = full_n / n;
    if (r == 2) {
        for (int k = 0; k < m; k++) {
            double wr = memo_re[k * step];
            double wi = memo_im[k * step];
            double br = out[m + k].re * wr - out[m + k].im * wi;
            double bi = out[m + k].re * wi + out[m + k].im * wr;
            double ar = out[k].re;
            double ai = out[k].im;
            out[k].re = ar + br;
            out[k].im = ai + bi;
            out[m + k].re = ar - br;
            out[m + k].im = ai - bi;
        }
    } else {
        for (int k = 0; k < m; k++) {
            double w1r = memo_re[k * step];
            double w1i = memo_im[k * step];
            double w2r = memo_re[2 * k * step];
            double w2i = memo_im[2 * k * step];
            double t0r = out[k].re;
            double t0i = out[k].im;
            double t1r = out[m + k].re * w1r - out[m + k].im * w1i;
            double t1i = out[m + k].re * w1i + out[m + k].im * w1r;
            double t2r = out[2 * m + k].re * w2r - out[2 * m + k].im * w2i;
            double t2i = out[2 * m + k].re * w2i + out[2 * m + k].im * w2r;
            double sr = t1r + t2r;
            double si = t1i + t2i;
            double dr = t1r - t2r;
            double di = t1i - t2i;
            out[k].re = t0r + sr;
            out[k].im = t0i + si;
            out[m + k].re = t0r - 0.5 * sr + 0.86602540378443864676 * di;
            out[m + k].im = t0i - 0.5 * si - 0.86602540378443864676 * dr;
            out[2 * m + k].re = t0r - 0.5 * sr - 0.86602540378443864676 * di;
            out[2 * m + k].im = t0i - 0.5 * si + 0.86602540378443864676 * dr;
        }
    }
}

void fft_memo(cplx11* x, int n) {
    if (n < 1 || n > MEMO_MAX) {
        return;
    }
    ensure_twiddles(n);
    cplx11* work = (cplx11*)malloc(n * sizeof(cplx11));
    core11(x, work, n, 1, n);
    for (int i = 0; i < n; i++) {
        x[i] = work[i];
    }
    free(work);
}
