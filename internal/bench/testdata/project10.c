/*
 * project10 "normdit": radix-2 DIT FFT that NORMALIZES its output (divides
 * by N) — a behavioral-mismatch example: the PowerQuad and FFTW return
 * un-normalized spectra, so FACC must synthesize a normalize post-op for
 * them, while the (normalizing) FFTA needs none. Style notes (Table 1):
 * twiddles precomputed into stack tables, custom complex, for loops.
 */
#include <math.h>

struct cnum {
    double re;
    double im;
};

void fft_norm(struct cnum* s, int n) {
    double twr[n / 2 + 1];
    double twi[n / 2 + 1];
    for (int k = 0; k < n / 2; k++) {
        double ang = -2.0 * M_PI * (double)k / (double)n;
        twr[k] = cos(ang);
        twi[k] = sin(ang);
    }

    int j = 0;
    for (int i = 1; i < n; i++) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) {
            j ^= bit;
        }
        j |= bit;
        if (i < j) {
            struct cnum t = s[i];
            s[i] = s[j];
            s[j] = t;
        }
    }

    for (int len = 2; len <= n; len <<= 1) {
        int half = len / 2;
        int stride = n / len;
        for (int start = 0; start < n; start += len) {
            for (int k = 0; k < half; k++) {
                double wr = twr[k * stride];
                double wi = twi[k * stride];
                struct cnum a = s[start + k];
                struct cnum b = s[start + k + half];
                double tr = b.re * wr - b.im * wi;
                double ti = b.re * wi + b.im * wr;
                s[start + k].re = a.re + tr;
                s[start + k].im = a.im + ti;
                s[start + k + half].re = a.re - tr;
                s[start + k + half].im = a.im - ti;
            }
        }
    }

    /* This implementation returns the normalized spectrum. */
    double scale = 1.0 / (double)n;
    for (int i = 0; i < n; i++) {
        s[i].re = s[i].re * scale;
        s[i].im = s[i].im * scale;
    }
}
