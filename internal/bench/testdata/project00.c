/*
 * project00 "fixed64": radix-2 FFT hard-coded to 64 points.
 * Style notes (Table 1): constant twiddle tables baked into the source,
 * custom complex struct, while(1)/break loop structure, no pointer
 * arithmetic, minimal optimization. Typical of small embedded DSP code.
 */
#include <math.h>

struct cplx {
    float r;
    float i;
};

static const float tw_re_64[32] = {
    1.000000000e+00f, 9.951847267e-01f, 9.807852804e-01f, 9.569403357e-01f,
    9.238795325e-01f, 8.819212643e-01f, 8.314696123e-01f, 7.730104534e-01f,
    7.071067812e-01f, 6.343932842e-01f, 5.555702330e-01f, 4.713967368e-01f,
    3.826834324e-01f, 2.902846773e-01f, 1.950903220e-01f, 9.801714033e-02f,
    6.123233996e-17f, -9.801714033e-02f, -1.950903220e-01f, -2.902846773e-01f,
    -3.826834324e-01f, -4.713967368e-01f, -5.555702330e-01f, -6.343932842e-01f,
    -7.071067812e-01f, -7.730104534e-01f, -8.314696123e-01f, -8.819212643e-01f,
    -9.238795325e-01f, -9.569403357e-01f, -9.807852804e-01f, -9.951847267e-01f
};

static const float tw_im_64[32] = {
    -0.000000000e+00f, -9.801714033e-02f, -1.950903220e-01f, -2.902846773e-01f,
    -3.826834324e-01f, -4.713967368e-01f, -5.555702330e-01f, -6.343932842e-01f,
    -7.071067812e-01f, -7.730104534e-01f, -8.314696123e-01f, -8.819212643e-01f,
    -9.238795325e-01f, -9.569403357e-01f, -9.807852804e-01f, -9.951847267e-01f,
    -1.000000000e+00f, -9.951847267e-01f, -9.807852804e-01f, -9.569403357e-01f,
    -9.238795325e-01f, -8.819212643e-01f, -8.314696123e-01f, -7.730104534e-01f,
    -7.071067812e-01f, -6.343932842e-01f, -5.555702330e-01f, -4.713967368e-01f,
    -3.826834324e-01f, -2.902846773e-01f, -1.950903220e-01f, -9.801714033e-02f
};

void fft64(struct cplx* data) {
    /* Bit reversal for N = 64 (6 bits). */
    int i = 0;
    while (1) {
        if (i >= 64) {
            break;
        }
        int rev = 0;
        int v = i;
        int b = 0;
        while (1) {
            if (b >= 6) {
                break;
            }
            rev = (rev << 1) | (v & 1);
            v = v >> 1;
            b = b + 1;
        }
        if (i < rev) {
            struct cplx t = data[i];
            data[i] = data[rev];
            data[rev] = t;
        }
        i = i + 1;
    }

    /* Butterfly stages with table lookups. */
    int len = 2;
    while (1) {
        if (len > 64) {
            break;
        }
        int stride = 64 / len;
        int start = 0;
        while (1) {
            if (start >= 64) {
                break;
            }
            int k = 0;
            while (1) {
                if (k >= len / 2) {
                    break;
                }
                float wr = tw_re_64[k * stride];
                float wi = tw_im_64[k * stride];
                struct cplx a = data[start + k];
                struct cplx b2 = data[start + k + len / 2];
                float tr = b2.r * wr - b2.i * wi;
                float ti = b2.r * wi + b2.i * wr;
                data[start + k].r = a.r + tr;
                data[start + k].i = a.i + ti;
                data[start + k + len / 2].r = a.r - tr;
                data[start + k + len / 2].i = a.i - ti;
                k = k + 1;
            }
            start = start + len;
        }
        len = len * 2;
    }
}
