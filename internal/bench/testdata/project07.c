/*
 * project07 "ptrwalk": radix-2 FFT written in an aggressively
 * pointer-oriented style. Style notes (Table 1): twiddle factors
 * precomputed into stack buffers before the butterfly loops, pointer
 * arithmetic everywhere (no [] in the hot loops), custom complex type,
 * for loops, minimal algorithmic optimization.
 */
#include <math.h>
#include <stdlib.h>

typedef struct {
    double re;
    double im;
} cpx_t;

static void swap_elems(cpx_t* a, cpx_t* b) {
    cpx_t t = *a;
    *a = *b;
    *b = t;
}

static void permute(cpx_t* x, int n) {
    int j = 0;
    for (int i = 1; i < n; i++) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) {
            j ^= bit;
        }
        j |= bit;
        if (i < j) {
            swap_elems(x + i, x + j);
        }
    }
}

void fft_ptr(cpx_t* x, int n) {
    /* Precompute the n/2 twiddles for the largest stage. */
    double wr_tab[n / 2 + 1];
    double wi_tab[n / 2 + 1];
    double* wr_p = wr_tab;
    double* wi_p = wi_tab;
    for (int k = 0; k < n / 2; k++) {
        double ang = -2.0 * M_PI * (double)k / (double)n;
        *wr_p = cos(ang);
        *wi_p = sin(ang);
        wr_p++;
        wi_p++;
    }

    permute(x, n);

    for (int len = 2; len <= n; len <<= 1) {
        int half = len >> 1;
        int stride = n / len;
        cpx_t* block = x;
        for (int start = 0; start < n; start += len) {
            cpx_t* top = block;
            cpx_t* bot = block + half;
            double* wr = wr_tab;
            double* wi = wi_tab;
            for (int k = 0; k < half; k++) {
                double tr = bot->re * (*wr) - bot->im * (*wi);
                double ti = bot->re * (*wi) + bot->im * (*wr);
                double ar = top->re;
                double ai = top->im;
                top->re = ar + tr;
                top->im = ai + ti;
                bot->re = ar - tr;
                bot->im = ai - ti;
                top++;
                bot++;
                wr += stride;
                wi += stride;
            }
            block += len;
        }
    }
}
