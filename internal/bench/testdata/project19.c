/*
 * project19 "fft2d" (UNSUPPORTED: interface incompatibility).
 * A two-dimensional FFT over a flattened row-major grid. The interface is
 * a 2D transform; no 1D accelerator call is IO-equivalent to it.
 */
#include <complex.h>
#include <math.h>
#include <stdlib.h>

static void row_fft(double complex* x, int n) {
    for (int len = n; len >= 2; len /= 2) {
        for (int i = 0; i < n; i += len) {
            for (int k = 0; k < len / 2; k++) {
                double complex w =
                    cexp(-2.0 * M_PI * I * (double)k / (double)len);
                double complex u = x[i + k];
                double complex v = x[i + k + len / 2];
                x[i + k] = u + v;
                x[i + k + len / 2] = (u - v) * w;
            }
        }
    }
    int j = 0;
    for (int i = 1; i < n; i++) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) {
            j ^= bit;
        }
        j |= bit;
        if (i < j) {
            double complex t = x[i];
            x[i] = x[j];
            x[j] = t;
        }
    }
}

void fft2d(double complex* grid, int rows, int cols) {
    /* Transform every row, then every column. */
    for (int r = 0; r < rows; r++) {
        row_fft(grid + r * cols, cols);
    }
    double complex* col = (double complex*)malloc(rows * sizeof(double complex));
    for (int c = 0; c < cols; c++) {
        for (int r = 0; r < rows; r++) {
            col[r] = grid[r * cols + c];
        }
        row_fft(col, rows);
        for (int r = 0; r < rows; r++) {
            grid[r * cols + c] = col[r];
        }
    }
    free(col);
}
