/*
 * project17 "dft12": the smallest corpus member — an in-place DFT in a
 * dozen lines (Table 1: DFT, C99 complex, for loops, no optimization).
 */
#include <complex.h>
#include <math.h>

void dft_small(double complex* x, int n) {
    double complex out[n];
    for (int k = 0; k < n; k++) {
        out[k] = 0.0;
        for (int j = 0; j < n; j++) {
            out[k] += x[j] * cexp(-2.0 * M_PI * I * (double)j * (double)k / (double)n);
        }
    }
    for (int k = 0; k < n; k++) {
        x[k] = out[k];
    }
}
