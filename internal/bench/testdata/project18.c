/*
 * project18 "magspectrum" (UNSUPPORTED: interface incompatibility).
 * Computes the magnitude spectrum of a real signal: real input, magnitude
 * output. No complex output exists for the accelerator to produce, so
 * binding synthesis finds candidates but IO testing rejects them all.
 */
#include <math.h>
#include <stdlib.h>

void fft_mag(double* signal, double* mags, int n) {
    double* re = (double*)malloc(n * sizeof(double));
    double* im = (double*)malloc(n * sizeof(double));
    for (int i = 0; i < n; i++) {
        re[i] = signal[i];
        im[i] = 0.0;
    }
    /* Radix-2 over the scratch arrays. */
    int j = 0;
    for (int i = 1; i < n; i++) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) {
            j ^= bit;
        }
        j |= bit;
        if (i < j) {
            double tr = re[i];
            double ti = im[i];
            re[i] = re[j];
            im[i] = im[j];
            re[j] = tr;
            im[j] = ti;
        }
    }
    for (int len = 2; len <= n; len <<= 1) {
        double ang = -2.0 * M_PI / (double)len;
        for (int start = 0; start < n; start += len) {
            for (int k = 0; k < len / 2; k++) {
                double wr = cos(ang * (double)k);
                double wi = sin(ang * (double)k);
                int bot = start + k + len / 2;
                double tr = re[bot] * wr - im[bot] * wi;
                double ti = re[bot] * wi + im[bot] * wr;
                double ar = re[start + k];
                double ai = im[start + k];
                re[start + k] = ar + tr;
                im[start + k] = ai + ti;
                re[bot] = ar - tr;
                im[bot] = ai - ti;
            }
        }
    }
    for (int i = 0; i < n; i++) {
        mags[i] = sqrt(re[i] * re[i] + im[i] * im[i]);
    }
    free(re);
    free(im);
}
