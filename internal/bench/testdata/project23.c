/*
 * project23 "verbose" (UNSUPPORTED: printf).
 * An FFT that logs progress to stdout mid-transform. The IO is observable
 * behavior an accelerator cannot reproduce, so FACC refuses the region.
 */
#include <math.h>
#include <stdlib.h>

typedef struct {
    double re;
    double im;
} vc23;

void fft_verbose(vc23* x, int n) {
    printf("fft: starting %d-point transform\n", n);
    int j = 0;
    for (int i = 1; i < n; i++) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) {
            j ^= bit;
        }
        j |= bit;
        if (i < j) {
            vc23 t = x[i];
            x[i] = x[j];
            x[j] = t;
        }
    }
    for (int len = 2; len <= n; len <<= 1) {
        printf("fft: stage len=%d\n", len);
        double ang = -2.0 * M_PI / (double)len;
        for (int start = 0; start < n; start += len) {
            for (int k = 0; k < len / 2; k++) {
                double wr = cos(ang * (double)k);
                double wi = sin(ang * (double)k);
                vc23 a = x[start + k];
                vc23 b = x[start + k + len / 2];
                double tr = b.re * wr - b.im * wi;
                double ti = b.re * wi + b.im * wr;
                x[start + k].re = a.re + tr;
                x[start + k].im = a.im + ti;
                x[start + k + len / 2].re = a.re - tr;
                x[start + k + len / 2].im = a.im - ti;
            }
        }
    }
    printf("fft: done\n");
}
