/*
 * project20 "realhalf" (UNSUPPORTED: interface incompatibility).
 * In-place real FFT with FFTW-style "halfcomplex" packing: the single
 * real array holds r0, r1, ..., r_{n/2}, i_{n/2-1}, ..., i_1 afterwards.
 * One real array cannot bind to the complex-in/complex-out accelerator
 * interface.
 */
#include <math.h>
#include <stdlib.h>

void rfft(double* x, int n) {
    double* re = (double*)malloc(n * sizeof(double));
    double* im = (double*)malloc(n * sizeof(double));
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < n; j++) {
            double ang = -2.0 * M_PI * (double)j * (double)k / (double)n;
            sre += x[j] * cos(ang);
            sim += x[j] * sin(ang);
        }
        re[k] = sre;
        im[k] = sim;
    }
    /* Halfcomplex packing. */
    for (int k = 0; k <= n / 2; k++) {
        x[k] = re[k];
    }
    for (int k = 1; k < n - n / 2; k++) {
        x[n - k] = im[k];
    }
    free(re);
    free(im);
}
