/*
 * project09 "bigmixed": out-of-place mixed-radix FFT with a direction
 * argument (0 = forward, 1 = un-normalized inverse). Style notes
 * (Table 1): twiddle tables precomputed per call, pointer arithmetic,
 * a mix of for/while loops and recursion, unrolled radix-2/radix-4
 * combine stages, custom complex type, status-code return.
 */
#include <math.h>
#include <stdlib.h>

typedef struct {
    double re;
    double im;
} cpx9;

/*
 * Generic strided DFT used for prime factors outside {2,3,4,5}.
 * tw tables hold exp(sign*2*pi*i*k/full_n).
 */
static void slow_dft9(cpx9* in, cpx9* out, int n, int stride, double sgn) {
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        cpx9* p = in;
        int j = 0;
        while (j < n) {
            double ang = sgn * 2.0 * M_PI * (double)((j * k) % n) / (double)n;
            double c = cos(ang);
            double s = sin(ang);
            sre += p->re * c - p->im * s;
            sim += p->re * s + p->im * c;
            p += stride;
            j++;
        }
        out[k].re = sre;
        out[k].im = sim;
    }
}

/* Unrolled radix-2 combine, two butterflies per iteration. */
static void mix2(cpx9* out, int m, int step, double* twr, double* twi) {
    cpx9* p = out;
    cpx9* q = out + m;
    int k = 0;
    while (k + 1 < m) {
        double w0r = twr[k * step];
        double w0i = twi[k * step];
        double w1r = twr[(k + 1) * step];
        double w1i = twi[(k + 1) * step];
        double b0r = q[0].re * w0r - q[0].im * w0i;
        double b0i = q[0].re * w0i + q[0].im * w0r;
        double b1r = q[1].re * w1r - q[1].im * w1i;
        double b1i = q[1].re * w1i + q[1].im * w1r;
        double a0r = p[0].re;
        double a0i = p[0].im;
        double a1r = p[1].re;
        double a1i = p[1].im;
        p[0].re = a0r + b0r;
        p[0].im = a0i + b0i;
        q[0].re = a0r - b0r;
        q[0].im = a0i - b0i;
        p[1].re = a1r + b1r;
        p[1].im = a1i + b1i;
        q[1].re = a1r - b1r;
        q[1].im = a1i - b1i;
        p += 2;
        q += 2;
        k += 2;
    }
    while (k < m) {
        double wr = twr[k * step];
        double wi = twi[k * step];
        double br = q->re * wr - q->im * wi;
        double bi = q->re * wi + q->im * wr;
        double ar = p->re;
        double ai = p->im;
        p->re = ar + br;
        p->im = ai + bi;
        q->re = ar - br;
        q->im = ai - bi;
        p++;
        q++;
        k++;
    }
}

/* Unrolled radix-4 combine; sgn folds the direction into the +-i terms. */
static void mix4(cpx9* out, int m, int step, double* twr, double* twi, double sgn) {
    cpx9* p0 = out;
    cpx9* p1 = out + m;
    cpx9* p2 = out + 2 * m;
    cpx9* p3 = out + 3 * m;
    for (int k = 0; k < m; k++) {
        double w1r = twr[k * step];
        double w1i = twi[k * step];
        double w2r = twr[2 * k * step];
        double w2i = twi[2 * k * step];
        double w3r = twr[3 * k * step];
        double w3i = twi[3 * k * step];
        double t0r = p0->re;
        double t0i = p0->im;
        double t1r = p1->re * w1r - p1->im * w1i;
        double t1i = p1->re * w1i + p1->im * w1r;
        double t2r = p2->re * w2r - p2->im * w2i;
        double t2i = p2->re * w2i + p2->im * w2r;
        double t3r = p3->re * w3r - p3->im * w3i;
        double t3i = p3->re * w3i + p3->im * w3r;
        double a0r = t0r + t2r;
        double a0i = t0i + t2i;
        double a1r = t0r - t2r;
        double a1i = t0i - t2i;
        double a2r = t1r + t3r;
        double a2i = t1i + t3i;
        double a3r = t1r - t3r;
        double a3i = t1i - t3i;
        p0->re = a0r + a2r;
        p0->im = a0i + a2i;
        /* Forward multiplies the odd difference by -i, inverse by +i;
         * callers pass sgn = +1 for forward, -1 for inverse. */
        p1->re = a1r + sgn * a3i;
        p1->im = a1i - sgn * a3r;
        p2->re = a0r - a2r;
        p2->im = a0i - a2i;
        p3->re = a1r - sgn * a3i;
        p3->im = a1i + sgn * a3r;
        p0++;
        p1++;
        p2++;
        p3++;
    }
}

/* Unrolled radix-3 combine; sgn folds the direction into the imaginary
 * root constant. */
static void mix3(cpx9* out, int m, int step, double* twr, double* twi, double sgn) {
    double s3 = sgn * 0.86602540378443864676;
    cpx9* p0 = out;
    cpx9* p1 = out + m;
    cpx9* p2 = out + 2 * m;
    for (int k = 0; k < m; k++) {
        double w1r = twr[k * step];
        double w1i = twi[k * step];
        double w2r = twr[2 * k * step];
        double w2i = twi[2 * k * step];
        double t0r = p0->re;
        double t0i = p0->im;
        double t1r = p1->re * w1r - p1->im * w1i;
        double t1i = p1->re * w1i + p1->im * w1r;
        double t2r = p2->re * w2r - p2->im * w2i;
        double t2i = p2->re * w2i + p2->im * w2r;
        double sr = t1r + t2r;
        double si = t1i + t2i;
        double dr = t1r - t2r;
        double di = t1i - t2i;
        p0->re = t0r + sr;
        p0->im = t0i + si;
        p1->re = t0r - 0.5 * sr - s3 * di;
        p1->im = t0i - 0.5 * si + s3 * dr;
        p2->re = t0r - 0.5 * sr + s3 * di;
        p2->im = t0i - 0.5 * si - s3 * dr;
        p0++;
        p1++;
        p2++;
    }
}

/*
 * Strided gather/scatter helpers, written in the library's pointer style.
 * Used by the cache-blocked copy path below.
 */
static void gather9(cpx9* dst, cpx9* src, int count, int stride) {
    cpx9* d = dst;
    cpx9* s = src;
    int i = 0;
    while (i + 4 <= count) {
        d[0] = s[0];
        d[1] = s[stride];
        d[2] = s[2 * stride];
        d[3] = s[3 * stride];
        d += 4;
        s += 4 * stride;
        i += 4;
    }
    while (i < count) {
        *d = *s;
        d++;
        s += stride;
        i++;
    }
}

static void scatter9(cpx9* dst, cpx9* src, int count, int stride) {
    cpx9* d = dst;
    cpx9* s = src;
    int i = 0;
    while (i + 4 <= count) {
        d[0] = s[0];
        d[stride] = s[1];
        d[2 * stride] = s[2];
        d[3 * stride] = s[3];
        d += 4 * stride;
        s += 4;
        i += 4;
    }
    while (i < count) {
        *d = *s;
        d += stride;
        s++;
        i++;
    }
}

/* Generic radix-r combine for r = 5 (complex multiplies). */
static void mixr(cpx9* out, int r, int m, int step, double* twr, double* twi,
                 int full_n, double sgn) {
    cpx9 t[5];
    cpx9 acc[5];
    int n = r * m;
    for (int k = 0; k < m; k++) {
        for (int q = 0; q < r; q++) {
            double wr = twr[(q * k * step) % full_n];
            double wi = twi[(q * k * step) % full_n];
            cpx9* s = out + q * m + k;
            t[q].re = s->re * wr - s->im * wi;
            t[q].im = s->re * wi + s->im * wr;
        }
        for (int j = 0; j < r; j++) {
            double sre = 0.0;
            double sim = 0.0;
            for (int q = 0; q < r; q++) {
                double ang = sgn * 2.0 * M_PI * (double)((q * j) % r) / (double)r;
                double c = cos(ang);
                double s2 = sin(ang);
                sre += t[q].re * c - t[q].im * s2;
                sim += t[q].re * s2 + t[q].im * c;
            }
            acc[j].re = sre;
            acc[j].im = sim;
        }
        for (int j = 0; j < r; j++) {
            out[j * m + k] = acc[j];
        }
    }
}

static void fft9_core(cpx9* in, cpx9* out, int n, int stride, int full_n,
                      double* twr, double* twi, double sgn) {
    if (n == 1) {
        out[0] = in[0];
        return;
    }
    int r = 0;
    if (n % 4 == 0) {
        r = 4;
    } else if (n % 2 == 0) {
        r = 2;
    } else if (n % 3 == 0) {
        r = 3;
    } else if (n % 5 == 0) {
        r = 5;
    }
    if (r == 0) {
        if (stride > 1 && n <= 64) {
            /* Cache-blocked path: gather the strided subsequence into a
             * contiguous buffer before the direct transform. */
            cpx9 tmp[n];
            gather9(tmp, in, n, stride);
            slow_dft9(tmp, out, n, 1, sgn);
        } else {
            slow_dft9(in, out, n, stride, sgn);
        }
        return;
    }
    int m = n / r;
    int q = 0;
    while (q < r) {
        fft9_core(in + q * stride, out + q * m, m, stride * r, full_n, twr, twi, sgn);
        q++;
    }
    int step = full_n / n;
    if (r == 2) {
        mix2(out, m, step, twr, twi);
    } else if (r == 3) {
        mix3(out, m, step, twr, twi, sgn);
    } else if (r == 4) {
        mix4(out, m, step, twr, twi, -sgn);
    } else {
        mixr(out, r, m, step, twr, twi, full_n, sgn);
    }
}

int fft_big(cpx9* x, cpx9* y, int n, int dir) {
    if (n < 1) {
        return -1;
    }
    double sgn = -1.0;
    if (dir) {
        sgn = 1.0;
    }
    double* twr = (double*)malloc(n * sizeof(double));
    double* twi = (double*)malloc(n * sizeof(double));
    int k = 0;
    do {
        double ang = sgn * 2.0 * M_PI * (double)k / (double)n;
        twr[k] = cos(ang);
        twi[k] = sin(ang);
        k++;
    } while (k < n);
    fft9_core(x, y, n, 1, n, twr, twi, sgn);
    free(twr);
    free(twi);
    return 0;
}
