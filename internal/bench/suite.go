// Package bench holds the 25-program FFT benchmark suite: the stand-in for
// the paper's GitHub corpus (24 search results + the MiBench FFT). The
// programs are written in MiniC and deliberately reproduce the diversity
// axes of the paper's Table 1 — algorithm (radix-2 DIT/DIF, mixed-radix,
// Bluestein, recursive, plain DFT), supported lengths, twiddle handling
// (constant tables, precomputed buffers, computed in-loop, memoized),
// complex representation (custom structs, C99 _Complex, split arrays),
// pointer arithmetic, loop structure and hand-optimization level — plus
// the seven unsupported programs behind the paper's Figure 8 failure
// categories.
package bench

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

//go:embed testdata/*.c
var sources embed.FS

// FailureCategory classifies why FACC cannot compile a program (Fig. 8).
type FailureCategory string

// Failure categories; Supported marks compilable programs.
const (
	Supported       FailureCategory = ""
	FailInterface   FailureCategory = "interface-incompatibility"
	FailNestedMem   FailureCategory = "nested-memory"
	FailPrintf      FailureCategory = "printf"
	FailVoidPointer FailureCategory = "void-pointer"
)

// Benchmark is one corpus program plus its Table 1 metadata.
type Benchmark struct {
	ID    int
	Name  string
	File  string
	Entry string // the FFT entry-point function

	// Table 1 columns.
	Lengths       string // "only 64", "pow2<=256", "pow2", "all"
	Algorithm     string
	Twiddles      string
	ComplexRepr   string // "custom", "c99", "none"
	PointerArith  bool
	LoopStructure string
	Optimizations string

	// Expected FACC outcome (ground truth for the harness and tests).
	Failure FailureCategory

	// ProfileValues is the value-profiling environment: the values the
	// host application passes for each scalar parameter.
	ProfileValues map[string][]int64

	// PerfSize is the transform length used in the performance figures
	// (1024 unless the implementation supports less — paper Fig. 10).
	PerfSize int

	// Normalized marks implementations that scale their output by 1/N.
	Normalized bool

	// BitReversedOut marks implementations whose contract is a
	// bit-reversed spectrum (project06's DIF without the reversal pass).
	BitReversedOut bool

	// Driver describes how to invoke the entry point, one token per
	// parameter: "x" (in-place complex array), "in"/"out" (out-of-place
	// pair), "re"/"im" (split arrays), "scratch" (work buffer), "n"
	// (length), "flag" (mode selector, 0 = forward transform). Empty for
	// programs the generic runner does not drive (the unsupported ones).
	Driver []string
}

// Source returns the program text.
func (b *Benchmark) Source() string {
	data, err := sources.ReadFile("testdata/" + b.File)
	if err != nil {
		panic(fmt.Sprintf("bench: missing embedded source %s: %v", b.File, err))
	}
	return string(data)
}

// LinesOfCode counts non-blank source lines.
func (b *Benchmark) LinesOfCode() int {
	n := 0
	for _, line := range strings.Split(b.Source(), "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// IsSupported reports whether FACC is expected to compile this program.
func (b *Benchmark) IsSupported() bool { return b.Failure == Supported }

// SupportsSize reports whether the implementation accepts length n (per
// its documented Lengths domain).
func (b *Benchmark) SupportsSize(n int) bool {
	pow2 := n > 0 && n&(n-1) == 0
	switch b.Lengths {
	case "only 64":
		return n == 64
	case "pow2<=256":
		return pow2 && n <= 256
	case "pow2":
		return pow2
	default: // "all"
		return n >= 1
	}
}

var pow2Sizes = []int64{64, 128, 256, 512, 1024}

// Suite returns the full 25-program corpus in ID order.
func Suite() []*Benchmark {
	s := []*Benchmark{
		{ID: 0, Driver: []string{"x"}, Name: "fixed64", File: "project00.c", Entry: "fft64",
			Lengths: "only 64", Algorithm: "Radix-2 FFT", Twiddles: "Constant",
			ComplexRepr: "custom", LoopStructure: "While-True-Break",
			Optimizations: "Minimal", PerfSize: 64,
			ProfileValues: map[string][]int64{}},
		{ID: 1, Driver: []string{"x", "n", "flag"}, Name: "table256", File: "project01.c", Entry: "fft_pow2",
			Lengths: "pow2<=256", Algorithm: "Radix-2 FFT", Twiddles: "Constant",
			ComplexRepr: "custom", LoopStructure: "Do-While/For",
			Optimizations: "Minimal", PerfSize: 256,
			ProfileValues: map[string][]int64{"n": {64, 128, 256}, "inverse": {0, 1}}},
		{ID: 2, Driver: []string{"x", "scratch", "n"}, Name: "recsplit", File: "project02.c", Entry: "fft_rec",
			Lengths: "pow2", Algorithm: "Radix-2 FFT", Twiddles: "Computed in FFT",
			ComplexRepr: "custom", LoopStructure: "For/Recursive",
			Optimizations: "Minimal", PerfSize: 1024,
			ProfileValues: map[string][]int64{"n": pow2Sizes}},
		{ID: 3, Driver: []string{"x", "n"}, Name: "iterdit", File: "project03.c", Entry: "fft_iter",
			Lengths: "pow2", Algorithm: "Radix-2 FFT", Twiddles: "Computed in FFT",
			ComplexRepr: "custom", LoopStructure: "For",
			Optimizations: "Minimal", PerfSize: 1024,
			ProfileValues: map[string][]int64{"n": pow2Sizes}},
		{ID: 4, Driver: []string{"in", "out", "n"}, Name: "mixedunroll", File: "project04.c", Entry: "fft_mixed",
			Lengths: "all", Algorithm: "Mixed-Radix FFT", Twiddles: "Computed in FFT",
			ComplexRepr: "custom", LoopStructure: "For/Recursive",
			Optimizations: "Extensive Unrolling", PerfSize: 1024,
			ProfileValues: map[string][]int64{"n": {60, 64, 100, 128, 240, 256, 1000, 1024}}},
		{ID: 5, Driver: []string{"x", "n"}, Name: "handopt", File: "project05.c", Entry: "fft_opt",
			Lengths: "all", Algorithm: "Mixed-Radix FFT", Twiddles: "Pre-Computed",
			ComplexRepr: "custom", PointerArith: true, LoopStructure: "For",
			Optimizations: "Hand-Vectorized/Unrolled", PerfSize: 1024,
			ProfileValues: map[string][]int64{"n": {48, 64, 120, 128, 512, 1000, 1024}}},
		{ID: 6, Driver: []string{"x", "n"}, Name: "smalldif", File: "project06.c", Entry: "fft_dif",
			Lengths: "pow2", Algorithm: "Radix-2 FFT (DIF)", Twiddles: "Computed in FFT",
			ComplexRepr: "custom", LoopStructure: "For",
			Optimizations: "Minimal", PerfSize: 1024, BitReversedOut: true,
			ProfileValues: map[string][]int64{"n": pow2Sizes}},
		{ID: 7, Driver: []string{"x", "n"}, Name: "ptrwalk", File: "project07.c", Entry: "fft_ptr",
			Lengths: "pow2", Algorithm: "Radix-2 FFT", Twiddles: "Pre-Computed",
			ComplexRepr: "custom", PointerArith: true, LoopStructure: "For",
			Optimizations: "Minimal", PerfSize: 1024,
			ProfileValues: map[string][]int64{"n": pow2Sizes}},
		{ID: 8, Driver: []string{"x", "n"}, Name: "c99dif", File: "project08.c", Entry: "fft_c99_dif",
			Lengths: "pow2", Algorithm: "Radix-2 FFT (DIF)", Twiddles: "Computed in FFT",
			ComplexRepr: "c99", LoopStructure: "For",
			Optimizations: "Minimal", PerfSize: 1024,
			ProfileValues: map[string][]int64{"n": pow2Sizes}},
		{ID: 9, Driver: []string{"in", "out", "n", "flag"}, Name: "bigmixed", File: "project09.c", Entry: "fft_big",
			Lengths: "all", Algorithm: "Mixed-Radix FFT", Twiddles: "Pre-Computed",
			ComplexRepr: "custom", PointerArith: true,
			LoopStructure: "For/While/Recursive",
			Optimizations: "Extensive Unrolling", PerfSize: 1024,
			ProfileValues: map[string][]int64{
				"n": {28, 36, 64, 128, 180, 256, 1000, 1024}, "dir": {0, 1}}},
		{ID: 10, Driver: []string{"x", "n"}, Name: "normdit", File: "project10.c", Entry: "fft_norm",
			Lengths: "pow2", Algorithm: "Radix-2 FFT", Twiddles: "Pre-Computed",
			ComplexRepr: "custom", LoopStructure: "For",
			Optimizations: "Minimal", PerfSize: 1024, Normalized: true,
			ProfileValues: map[string][]int64{"n": pow2Sizes}},
		{ID: 11, Driver: []string{"x", "n"}, Name: "memotw", File: "project11.c", Entry: "fft_memo",
			Lengths: "all", Algorithm: "Mixed-Radix FFT", Twiddles: "Pre-Computed",
			ComplexRepr: "custom", LoopStructure: "Do-While/For",
			Optimizations: "Twiddle-Factor Memoization", PerfSize: 1024,
			ProfileValues: map[string][]int64{"n": {64, 96, 128, 288, 1024}}},
		{ID: 12, Driver: []string{"in", "out", "n"}, Name: "bluestein", File: "project12.c", Entry: "fft_blue",
			Lengths: "all", Algorithm: "Mixed-Radix + Bluestein", Twiddles: "Computed in FFT",
			ComplexRepr: "custom", LoopStructure: "For/Recursive",
			Optimizations: "Unrolling", PerfSize: 1024,
			ProfileValues: map[string][]int64{"n": {17, 31, 64, 101, 128, 1024}}},
		{ID: 13, Driver: []string{"x", "n"}, Name: "c99dit", File: "project13.c", Entry: "fft_c99_dit",
			Lengths: "pow2", Algorithm: "Radix-2 FFT (DIT)", Twiddles: "Computed in FFT",
			ComplexRepr: "c99", LoopStructure: "For",
			Optimizations: "Minimal", PerfSize: 1024,
			ProfileValues: map[string][]int64{"n": pow2Sizes}},
		{ID: 14, Driver: []string{"re", "im", "n"}, Name: "splitarrays", File: "project14.c", Entry: "fft_split",
			Lengths: "pow2", Algorithm: "Radix-2 FFT", Twiddles: "Computed in FFT",
			ComplexRepr: "none", LoopStructure: "For",
			Optimizations: "Minimal", PerfSize: 1024,
			ProfileValues: map[string][]int64{"n": pow2Sizes}},
		{ID: 15, Driver: []string{"x", "n"}, Name: "purerec", File: "project15.c", Entry: "fft_recursive",
			Lengths: "all", Algorithm: "Recursive FFT", Twiddles: "Computed in FFT",
			ComplexRepr: "c99", LoopStructure: "Recursive",
			Optimizations: "Minimal", PerfSize: 1024,
			ProfileValues: map[string][]int64{"n": {27, 64, 128, 243, 1024}}},
		{ID: 16, Driver: []string{"in", "out", "n"}, Name: "dft20", File: "project16.c", Entry: "dft",
			Lengths: "all", Algorithm: "DFT", Twiddles: "Unneeded",
			ComplexRepr: "c99", LoopStructure: "For",
			Optimizations: "None", PerfSize: 1024,
			ProfileValues: map[string][]int64{"n": {50, 64, 100, 128, 1024}}},
		{ID: 17, Driver: []string{"x", "n"}, Name: "dft12", File: "project17.c", Entry: "dft_small",
			Lengths: "all", Algorithm: "DFT", Twiddles: "Unneeded",
			ComplexRepr: "c99", LoopStructure: "For",
			Optimizations: "None", PerfSize: 1024,
			ProfileValues: map[string][]int64{"n": {50, 64, 128, 1024}}},

		// Unsupported programs (paper Fig. 8 failure categories).
		{ID: 18, Name: "magspectrum", File: "project18.c", Entry: "fft_mag",
			Lengths: "pow2", Algorithm: "Radix-2 + magnitude", Twiddles: "Computed in FFT",
			ComplexRepr: "none", LoopStructure: "For", Optimizations: "Minimal",
			Failure: FailInterface, PerfSize: 1024,
			ProfileValues: map[string][]int64{"n": pow2Sizes}},
		{ID: 19, Name: "fft2d", File: "project19.c", Entry: "fft2d",
			Lengths: "pow2", Algorithm: "2D FFT", Twiddles: "Computed in FFT",
			ComplexRepr: "c99", LoopStructure: "For", Optimizations: "Minimal",
			Failure: FailInterface, PerfSize: 1024,
			ProfileValues: map[string][]int64{"rows": {8, 16}, "cols": {8, 16}}},
		{ID: 20, Name: "realhalf", File: "project20.c", Entry: "rfft",
			Lengths: "pow2", Algorithm: "Real FFT (packed)", Twiddles: "Computed in FFT",
			ComplexRepr: "none", LoopStructure: "For", Optimizations: "Minimal",
			Failure: FailInterface, PerfSize: 1024,
			ProfileValues: map[string][]int64{"n": pow2Sizes}},
		{ID: 21, Name: "voidgeneric", File: "project21.c", Entry: "fft_generic",
			Lengths: "pow2", Algorithm: "Radix-2 FFT", Twiddles: "Computed in FFT",
			ComplexRepr: "custom", LoopStructure: "For", Optimizations: "Minimal",
			Failure: FailVoidPointer, PerfSize: 1024,
			ProfileValues: map[string][]int64{"n": pow2Sizes, "elem_size": {8}}},
		{ID: 22, Name: "voidkind", File: "project22.c", Entry: "transform",
			Lengths: "pow2", Algorithm: "Radix-2 FFT", Twiddles: "Computed in FFT",
			ComplexRepr: "custom", LoopStructure: "For", Optimizations: "Minimal",
			Failure: FailVoidPointer, PerfSize: 1024,
			ProfileValues: map[string][]int64{"n": pow2Sizes, "kind": {0}}},
		{ID: 23, Name: "verbose", File: "project23.c", Entry: "fft_verbose",
			Lengths: "pow2", Algorithm: "Radix-2 FFT", Twiddles: "Computed in FFT",
			ComplexRepr: "custom", LoopStructure: "For", Optimizations: "Minimal",
			Failure: FailPrintf, PerfSize: 1024,
			ProfileValues: map[string][]int64{"n": pow2Sizes}},
		{ID: 24, Name: "rowplan", File: "project24.c", Entry: "fft_rows",
			Lengths: "pow2", Algorithm: "Row-planned FFT", Twiddles: "Computed in FFT",
			ComplexRepr: "c99", LoopStructure: "For", Optimizations: "Minimal",
			Failure: FailNestedMem, PerfSize: 1024,
			ProfileValues: map[string][]int64{"nrows": {4, 8}, "n": {64, 128}}},
	}
	sort.Slice(s, func(i, j int) bool { return s[i].ID < s[j].ID })
	return s
}

// SupportedSuite returns only the 18 compilable programs.
func SupportedSuite() []*Benchmark {
	var out []*Benchmark
	for _, b := range Suite() {
		if b.IsSupported() {
			out = append(out, b)
		}
	}
	return out
}

// ByName finds a benchmark by name.
func ByName(name string) (*Benchmark, error) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("bench: no benchmark %q", name)
}

// FailureCounts tallies Fig. 8's classification.
func FailureCounts() map[FailureCategory]int {
	counts := map[FailureCategory]int{}
	for _, b := range Suite() {
		counts[b.Failure]++
	}
	return counts
}
