package bench

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"facc/internal/fft"
	"facc/internal/interp"
	"facc/internal/minic"
)

func TestSuiteShape(t *testing.T) {
	s := Suite()
	if len(s) != 25 {
		t.Fatalf("suite has %d programs, want 25", len(s))
	}
	if len(SupportedSuite()) != 18 {
		t.Fatalf("supported = %d, want 18", len(SupportedSuite()))
	}
	counts := FailureCounts()
	if counts[Supported] != 18 || counts[FailInterface] != 3 ||
		counts[FailVoidPointer] != 2 || counts[FailPrintf] != 1 ||
		counts[FailNestedMem] != 1 {
		t.Errorf("failure counts = %v", counts)
	}
	for i, b := range s {
		if b.ID != i {
			t.Errorf("suite not in ID order at %d", i)
		}
		if b.PerfSize == 0 {
			t.Errorf("%s: missing PerfSize", b.Name)
		}
	}
}

func TestAllProgramsParseAndCheck(t *testing.T) {
	for _, b := range Suite() {
		if _, err := minic.ParseAndCheck(b.File, b.Source()); err != nil {
			t.Errorf("%s: frontend rejects corpus program: %v", b.Name, err)
		}
	}
}

func TestLinesOfCodeSpread(t *testing.T) {
	// The corpus must span the paper's diversity: a ~dozen-line DFT up to
	// a multi-hundred-line hand-optimized library.
	small, _ := ByName("dft12")
	if loc := small.LinesOfCode(); loc > 25 {
		t.Errorf("dft12 is %d lines, should be tiny", loc)
	}
	big, _ := ByName("handopt")
	if loc := big.LinesOfCode(); loc < 300 {
		t.Errorf("handopt is %d lines, should be large", loc)
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("iterdit")
	if err != nil || b.ID != 3 {
		t.Errorf("ByName(iterdit) = %v, %v", b, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown name")
	}
}

// testSizes picks small validation sizes from the profiled environment.
func testSizes(b *Benchmark) []int {
	if b.ID == 0 {
		return []int{64}
	}
	var sizes []int
	for _, v := range b.ProfileValues["n"] {
		if v <= 128 {
			sizes = append(sizes, int(v))
		}
	}
	if len(sizes) == 0 {
		sizes = []int{64}
	}
	return sizes
}

func randSignal(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

// TestSupportedBenchmarksComputeDFT validates every supported program
// against the reference DFT — the corpus itself must be correct before
// FACC's claims about it mean anything.
func TestSupportedBenchmarksComputeDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, b := range SupportedSuite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			r, err := NewRunner(b)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range testSizes(b) {
				in := randSignal(rng, n)
				got, err := r.Run(in)
				if err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				want := fft.DFT(in, fft.Forward)
				if b.Normalized {
					fft.Normalize(want)
				}
				if b.BitReversedOut {
					fft.BitReverse(want)
				}
				// Single-precision corpus members need a looser bound.
				tol := 1e-6 * float64(n)
				if b.ComplexRepr == "custom" || b.ComplexRepr == "none" {
					tol = 1e-3
				}
				if e := relError(got, want); e > tol {
					t.Errorf("n=%d: relative error %g (tol %g)", n, e, tol)
				}
			}
		})
	}
}

// relError returns max |got-want| / (1 + max|want|).
func relError(got, want []complex128) float64 {
	if len(got) != len(want) {
		return math.Inf(1)
	}
	norm := 0.0
	for _, v := range want {
		if m := cmplx.Abs(v); m > norm {
			norm = m
		}
	}
	worst := 0.0
	for i := range got {
		if d := cmplx.Abs(got[i] - want[i]); d > worst {
			worst = d
		}
	}
	return worst / (1 + norm)
}

// TestMemoizationPersistsAcrossRuns exercises project11's global cache.
func TestMemoizationPersistsAcrossRuns(t *testing.T) {
	b, _ := ByName("memotw")
	r, err := NewRunner(b)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	in := randSignal(rng, 64)
	c1, err := r.MeasureCounters(in)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := r.MeasureCounters(in)
	if err != nil {
		t.Fatal(err)
	}
	// The second run hits the twiddle cache: fewer math calls.
	if c2.MathCalls >= c1.MathCalls {
		t.Errorf("memoization not effective: %d then %d math calls",
			c1.MathCalls, c2.MathCalls)
	}
	// And the result stays correct.
	got, err := r.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	want := fft.DFT(in, fft.Forward)
	if e := relError(got, want); e > 1e-6 {
		t.Errorf("cached run wrong: %g", e)
	}
}

// TestUnsupportedProgramsStillWork: the seven rejected programs are valid
// code (FACC refuses them for interface reasons, not because they are
// broken). Spot-check their behavior directly.
func TestUnsupportedMagSpectrum(t *testing.T) {
	b, _ := ByName("magspectrum")
	f, err := minic.ParseAndCheck(b.File, b.Source())
	if err != nil {
		t.Fatal(err)
	}
	m, err := interp.NewMachine(f)
	if err != nil {
		t.Fatal(err)
	}
	n := 16
	rng := rand.New(rand.NewSource(9))
	sig := make([]float64, n)
	for i := range sig {
		sig[i] = rng.NormFloat64()
	}
	sigArr, _ := m.NewArray("signal", minic.Double, n)
	magArr, _ := m.NewArray("mags", minic.Double, n)
	if err := m.SetFloatArray(sigArr, sig); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CallNamed("fft_mag", []interp.Value{sigArr, magArr, interp.IntValue(int64(n))}); err != nil {
		t.Fatal(err)
	}
	got, err := m.GetFloatArray(magArr, n)
	if err != nil {
		t.Fatal(err)
	}
	cin := make([]complex128, n)
	for i, v := range sig {
		cin[i] = complex(v, 0)
	}
	spec := fft.DFT(cin, fft.Forward)
	for i := range got {
		if math.Abs(got[i]-cmplx.Abs(spec[i])) > 1e-9*(1+cmplx.Abs(spec[i])) {
			t.Fatalf("magnitude %d: got %g want %g", i, got[i], cmplx.Abs(spec[i]))
		}
	}
}

func TestUnsupportedVerbosePrints(t *testing.T) {
	b, _ := ByName("verbose")
	f, err := minic.ParseAndCheck(b.File, b.Source())
	if err != nil {
		t.Fatal(err)
	}
	m, err := interp.NewMachine(f)
	if err != nil {
		t.Fatal(err)
	}
	elem := f.Func("fft_verbose").Params[0].Type.Elem
	arr, _ := m.NewArray("x", elem, 8)
	if _, err := m.CallNamed("fft_verbose", []interp.Value{arr, interp.IntValue(8)}); err != nil {
		t.Fatal(err)
	}
	if m.Output() == "" {
		t.Error("verbose benchmark produced no output")
	}
}

func TestUnsupportedRowPlan(t *testing.T) {
	b, _ := ByName("rowplan")
	f, err := minic.ParseAndCheck(b.File, b.Source())
	if err != nil {
		t.Fatal(err)
	}
	m, err := interp.NewMachine(f)
	if err != nil {
		t.Fatal(err)
	}
	nrows, n := 2, 8
	rowType := minic.PointerTo(minic.ComplexDouble)
	rows, err := m.NewArray("rows", rowType, nrows)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	inputs := make([][]complex128, nrows)
	rowVals := make([]interp.Value, nrows)
	for r := 0; r < nrows; r++ {
		rowArr, err := m.NewArray("row", minic.ComplexDouble, n)
		if err != nil {
			t.Fatal(err)
		}
		inputs[r] = randSignal(rng, n)
		if err := m.SetComplexArray(rowArr, inputs[r]); err != nil {
			t.Fatal(err)
		}
		rowVals[r] = rowArr
	}
	// Store the row pointers into the rows array.
	for r := 0; r < nrows; r++ {
		p := rows.P
		p.Off += r
		if err := m.StoreScalar(p, rowVals[r], minic.Pos{}); err != nil {
			t.Fatal(err)
		}
	}
	args := []interp.Value{rows, interp.IntValue(int64(nrows)), interp.IntValue(int64(n))}
	if _, err := m.CallNamed("fft_rows", args); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < nrows; r++ {
		got, err := m.GetComplexArray(rowVals[r], n)
		if err != nil {
			t.Fatal(err)
		}
		want := fft.DFT(inputs[r], fft.Forward)
		if e := relError(got, want); e > 1e-9 {
			t.Fatalf("row %d error %g", r, e)
		}
	}
}

func TestUnsupportedVoidGeneric(t *testing.T) {
	b, _ := ByName("voidgeneric")
	f, err := minic.ParseAndCheck(b.File, b.Source())
	if err != nil {
		t.Fatal(err)
	}
	m, err := interp.NewMachine(f)
	if err != nil {
		t.Fatal(err)
	}
	elem := minic.Type{}
	_ = elem
	// Locate the struct type via the file's typedef.
	var structType *minic.Type
	for _, td := range f.Typedefs {
		if td.Name == "vc21" {
			structType = td.Type
		}
	}
	if structType == nil {
		t.Fatal("vc21 typedef missing")
	}
	n := 8
	arr, err := m.NewArray("data", structType, n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	in := randSignal(rng, n)
	if err := m.SetStructComplexArray(arr, in, 0, 1); err != nil {
		t.Fatal(err)
	}
	args := []interp.Value{arr, interp.IntValue(int64(n)), interp.IntValue(16)}
	if _, err := m.CallNamed("fft_generic", args); err != nil {
		t.Fatal(err)
	}
	got, err := m.GetStructComplexArray(arr, n, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := fft.DFT(in, fft.Forward)
	if e := relError(got, want); e > 1e-9 {
		t.Fatalf("error %g", e)
	}
}
