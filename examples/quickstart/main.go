// Quickstart: compile a legacy radix-2 FFT (custom complex struct,
// in-place) to the Analog Devices FFTA and print the synthesized drop-in
// adapter. This is the paper's Figure 3 scenario end to end.
package main

import (
	"fmt"
	"log"

	"facc"
)

// legacySrc is unmodified "GitHub-style" C: a radix-2 FFT over a custom
// struct, un-normalized, power-of-two lengths only.
const legacySrc = `
#include <math.h>

typedef struct { double re; double im; } cpx;

void UserFFT(cpx* x, int n) {
    int j = 0;
    for (int i = 1; i < n; i++) {
        int bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j |= bit;
        if (i < j) {
            cpx tmp = x[i];
            x[i] = x[j];
            x[j] = tmp;
        }
    }
    for (int len = 2; len <= n; len <<= 1) {
        double ang = -2.0 * M_PI / (double)len;
        for (int i = 0; i < n; i += len) {
            for (int k = 0; k < len / 2; k++) {
                double wre = cos(ang * (double)k);
                double wim = sin(ang * (double)k);
                cpx u = x[i + k];
                cpx v;
                v.re = x[i + k + len / 2].re * wre - x[i + k + len / 2].im * wim;
                v.im = x[i + k + len / 2].re * wim + x[i + k + len / 2].im * wre;
                x[i + k].re = u.re + v.re;
                x[i + k].im = u.im + v.im;
                x[i + k + len / 2].re = u.re - v.re;
                x[i + k + len / 2].im = u.im - v.im;
            }
        }
    }
}`

func main() {
	// The value-profiling environment: what the host application actually
	// passes. 100 is outside the FFTA's power-of-two domain, so the
	// generated adapter will carry a range check with software fallback.
	res, err := facc.Compile("legacy.c", legacySrc, facc.TargetFFTA, facc.Options{
		ProfileValues: map[string][]int64{"n": {64, 100, 256, 1024, 131072}},
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.OK() {
		log.Fatalf("no adapter: %s", res.FailReason())
	}
	fmt.Println(res) // one-line summary
	fmt.Println()
	fmt.Println(res.AdapterC())
}
