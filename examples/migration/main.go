// Library migration (the paper's §10 closing direction): an application
// already restructured around the FFTW-style library API keeps benefiting
// from hardware evolution. FACC synthesizes an adapter implementing
// fftw_call via the Analog Devices FFTA — forward power-of-two transforms
// run on the accelerator (with its normalized output patched back to
// FFTW's convention), everything else falls back to the library.
package main

import (
	"fmt"
	"log"

	"facc"
)

func main() {
	mig, err := facc.Migrate(facc.TargetFFTW, facc.TargetFFTA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fftw -> ffta migration synthesized:\n")
	fmt.Printf("  accelerated domain : powers of two in [%d, %d]\n", mig.MinN, mig.MaxN)
	fmt.Printf("  behavioral patch   : %s\n", mig.Post)
	fmt.Printf("  forward-only pin   : %v (FFTA has no inverse mode)\n", mig.ForwardOnly)
	fmt.Printf("  validated on       : %d fuzzed inputs\n\n", mig.TestsPassed)
	fmt.Println(mig.EmitC())

	// Hardware-to-hardware works the same way: PowerQuad firmware moving
	// to a board with an FFTA.
	mig2, err := facc.Migrate(facc.TargetPowerQuad, facc.TargetFFTA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(mig2.EmitC())
}
