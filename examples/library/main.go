// Library-migration scenario (the paper's FFTW target): user code with a
// direction flag is bound to an FFTW-style plan API. Binding synthesis
// discovers the flag-to-direction mapping (0 -> FFTW_FORWARD,
// 1 -> FFTW_BACKWARD) instead of pinning the flag, so the adapter covers
// both transform directions. The example also shows the Fig. 16 effect:
// the library's wider API generates more binding candidates than the
// hardware targets.
package main

import (
	"fmt"
	"log"

	"facc"
)

const dirSrc = `
#include <math.h>

typedef struct { double re; double im; } cpx;

/* Forward DFT when inverse == 0, un-normalized inverse DFT otherwise. */
void spectral(cpx* x, int n, int inverse) {
    double sign = -1.0;
    if (inverse) sign = 1.0;
    cpx out[n];
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < n; j++) {
            double ang = sign * 2.0 * M_PI * (double)j * (double)k / (double)n;
            sre += x[j].re * cos(ang) - x[j].im * sin(ang);
            sim += x[j].re * sin(ang) + x[j].im * cos(ang);
        }
        out[k].re = sre;
        out[k].im = sim;
    }
    for (int k = 0; k < n; k++) x[k] = out[k];
}`

func main() {
	profile := map[string][]int64{
		"n":       {16, 32, 64, 128},
		"inverse": {0, 1},
	}
	counts := map[string]int{}
	for _, target := range facc.Targets() {
		res, err := facc.Compile("spectral.c", dirSrc, target, facc.Options{
			Entry:         "spectral",
			ProfileValues: profile,
		})
		if err != nil {
			log.Fatal(err)
		}
		counts[target] = res.Candidates()
		if target == facc.TargetFFTW {
			if !res.OK() {
				log.Fatalf("fftw: no adapter: %s", res.FailReason())
			}
			fmt.Println(res)
			fmt.Println()
			fmt.Println(res.AdapterC())
		}
	}
	fmt.Println("binding candidates per target (Fig. 16: the library API is wider):")
	for _, t := range facc.Targets() {
		fmt.Printf("  %-10s %d\n", t, counts[t])
	}
}
