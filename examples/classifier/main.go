// Classifier scenario: scan a multi-function "codebase" for acceleratable
// FFT regions with the neural classifier (the paper's candidate-detection
// stage), then compile only the flagged functions. Non-FFT functions with
// FFT-like signatures are flagged by top-3 classification but rejected by
// generate-and-test — the paper's "better to identify too many regions
// than too few".
package main

import (
	"fmt"
	"log"

	"facc"
	"facc/internal/minic"
)

const codebase = `
#include <math.h>
#include <complex.h>

typedef struct { double re; double im; } cpx;

/* A genuine FFT, buried among other DSP helpers. */
void transform(cpx* x, int n) {
    cpx out[n];
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < n; j++) {
            double ang = -2.0 * M_PI * (double)j * (double)k / (double)n;
            sre += x[j].re * cos(ang) - x[j].im * sin(ang);
            sim += x[j].re * sin(ang) + x[j].im * cos(ang);
        }
        out[k].re = sre;
        out[k].im = sim;
    }
    for (int k = 0; k < n; k++) x[k] = out[k];
}

/* FFT-shaped signature, but it is a windowing function. */
void hann_window(cpx* x, int n) {
    for (int i = 0; i < n; i++) {
        double w = 0.5 - 0.5 * cos(2.0 * M_PI * (double)i / (double)(n - 1));
        x[i].re = x[i].re * w;
        x[i].im = x[i].im * w;
    }
}

/* Plain scaling. */
void gain(double* samples, int n, double g) {
    for (int i = 0; i < n; i++) samples[i] = samples[i] * g;
}`

func main() {
	fmt.Println("training candidate classifier (OJClone-style dataset + FFT class)...")
	clf, err := facc.Train(10, 7)
	if err != nil {
		log.Fatal(err)
	}

	f, err := minic.ParseAndCheck("codebase.c", codebase)
	if err != nil {
		log.Fatal(err)
	}
	candidates := clf.CandidateFunctions(f)
	fmt.Printf("classifier flagged %d candidate region(s): %v\n", len(candidates), candidates)

	res, err := facc.Compile("codebase.c", codebase, facc.TargetFFTA, facc.Options{
		Classifier:    clf,
		ProfileValues: map[string][]int64{"n": {64, 128}},
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.OK() {
		log.Fatalf("no adapter: %s", res.FailReason())
	}
	fmt.Printf("generate-and-test accepted %q and rejected the rest\n", res.Function())
	fmt.Println(res)
}
