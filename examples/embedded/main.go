// Embedded scenario: an LPC55S69-class firmware uses the MiBench-style
// split-array FFT (separate real/imag buffers — the paper's hardest data
// mismatch). FACC binds it to the NXP PowerQuad, then this example
// exercises the compiled adapter functionally: it runs the original
// software in the MiniC interpreter and the accelerator model side by
// side, checks they agree on supported sizes, and shows the modeled
// speedup the evaluation reports.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"facc"
	"facc/internal/accel"
	"facc/internal/bench"
	"facc/internal/eval"
	"facc/internal/fft"
)

func main() {
	b, err := facc.CorpusBenchmark("splitarrays")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiling corpus program %q (%d LoC, %s complex repr) to PowerQuad\n",
		b.Name, b.LinesOfCode(), b.ComplexRepr)

	res, err := facc.Compile(b.File, b.Source(), facc.TargetPowerQuad, facc.Options{
		Entry:         b.Entry,
		ProfileValues: b.ProfileValues,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.OK() {
		log.Fatalf("no adapter: %s", res.FailReason())
	}
	fmt.Println(res)

	// Exercise software vs. accelerator functionally.
	runner, err := bench.NewRunner(b)
	if err != nil {
		log.Fatal(err)
	}
	pq := accel.NewPowerQuad()
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{64, 256, 1024} {
		in := make([]complex128, n)
		for i := range in {
			in[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		sw, err := runner.Run(in)
		if err != nil {
			log.Fatal(err)
		}
		hw, err := pq.Run(in, fft.Forward)
		if err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		for i := range sw {
			d := sw[i] - hw[i]
			if m := math.Hypot(real(d), imag(d)); m > worst {
				worst = m
			}
		}
		m, err := eval.NewProfiler().Measure(b, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("n=%5d  max |software - accelerator| = %.2e   modeled speedup %.1fx\n",
			n, worst, eval.Speedup(m, pq))
	}

	// The adapter's range check routes unsupported sizes to software.
	fmt.Println("\ngenerated range check falls back for n=100 (not a power of two):")
	for _, line := range []string{"  adapter head:"} {
		fmt.Println(line)
	}
	printHead(res.AdapterC(), 8)
}

func printHead(s string, lines int) {
	count := 0
	start := 0
	for i := 0; i < len(s) && count < lines; i++ {
		if s[i] == '\n' {
			fmt.Println("  " + s[start:i])
			start = i + 1
			count++
		}
	}
}
