// Package facc is the public API of the FACC reproduction — a compiler
// that maps legacy C code to Fourier-transform accelerators by
// synthesizing drop-in replacement adapters (Woodruff et al., "Bind the
// Gap: Compiling Real Software to Hardware FFT Accelerators", PLDI 2022).
//
// The pipeline: a neural classifier over program graphs finds candidate
// FFT regions (code mismatch); binding synthesis maps user variables to
// accelerator parameters (data mismatch); range-check generation guards
// the accelerator's domain with a software fallback (domain mismatch);
// sketch-based behavioral synthesis patches normalization/ordering
// differences (behavior mismatch); and IO-based generate-and-test fuzzing
// picks the unique adapter that is observationally equivalent to the
// original code.
//
// Quick start:
//
//	res, err := facc.Compile("fft.c", source, facc.TargetFFTA, facc.Options{
//	    ProfileValues: map[string][]int64{"n": {64, 256, 1024}},
//	})
//	if err != nil { ... }
//	if res.OK() {
//	    fmt.Println(res.AdapterC())
//	}
package facc

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"

	"facc/internal/accel"
	"facc/internal/bench"
	"facc/internal/binding"
	"facc/internal/core"
	"facc/internal/faultinject"
	"facc/internal/iogen"
	"facc/internal/obs"
	"facc/internal/synth"
)

// Compilation targets.
const (
	// TargetFFTA is the Analog Devices FFTA hardware accelerator
	// (power-of-two 64..65536, normalized output, 64-byte alignment).
	TargetFFTA = "ffta"
	// TargetPowerQuad is the NXP PowerQuad accelerator (power-of-two
	// 16..4096, un-normalized).
	TargetPowerQuad = "powerquad"
	// TargetFFTW is the FFTW-style optimized software library (any
	// length, direction and planner-flag parameters).
	TargetFFTW = "fftw"
)

// Options tunes a compilation. The zero value uses paper defaults: 10 IO
// tests per candidate, all functions considered (or the classifier when
// set), no ablations.
type Options struct {
	// Entry pins the function to compile. Empty = detect candidates.
	Entry string
	// ProfileValues is the value-profiling environment: the values each
	// scalar parameter takes in the host application. Without it FACC
	// falls back to fuzzing the accelerator's full domain, which rejects
	// user code with narrower domains (exactly as in the paper).
	ProfileValues map[string][]int64
	// Classifier enables neural candidate detection (see Train).
	Classifier *Classifier
	// NumTests overrides the IO examples per candidate (default 10).
	NumTests int
	// Workers bounds candidate-level parallelism inside generate-and-test:
	// up to Workers binding candidates are fuzzed concurrently, sharing a
	// memoized reference oracle (the user program's outputs are interpreted
	// once per distinct test case and reused across candidates). The
	// generated adapter, the Result counts and the journal verdicts are
	// deterministic — identical for every Workers value. 0 (the default)
	// means GOMAXPROCS; 1 forces fully sequential search.
	Workers int
	// Tolerance overrides the comparison tolerance (default 2e-3,
	// norm-scaled).
	Tolerance float64
	// DisableRangeHeuristic / DisableSingleRead are the ablation
	// switches from DESIGN.md.
	DisableRangeHeuristic bool
	DisableSingleRead     bool
	// Trace, when non-nil, records hierarchical spans for every pipeline
	// stage (parse → typecheck → classify → analyze → binding →
	// per-candidate fuzzing → codegen) plus interpreter and accelerator
	// metrics. Export with obs's Chrome-trace/JSONL/summary writers. Nil
	// (the default) keeps the synthesis hot path uninstrumented — zero
	// extra allocations in the fuzz loop.
	Trace *Tracer
	// Journal, when non-nil, records the synthesis provenance stream —
	// each binding candidate's lifecycle (emitted, pruned with the
	// heuristic that killed it, fuzz verdict with counterexample,
	// accepted). Render with Journal.WriteReport ("why was / wasn't this
	// adapter synthesised") or export as JSONL. Nil (the default) costs
	// nothing.
	Journal *Journal
	// Ledger, when non-nil, charges every interpreter test, interpreter
	// step and oracle lookup to a (function, candidate, target, verdict)
	// account, separating useful work (the winner) from speculative waste
	// (superseded/killed losers) and shared work (oracle hits). Render
	// with Ledger.WriteCostReport (`facc -explain -costs`) or roll up via
	// Ledger.Summary. Nil (the default) costs nothing on the hot path.
	Ledger *Ledger
	// Kills, when non-nil, records the search observatory: every
	// non-survivor candidate's kill event — the discriminating IO case
	// (seed, case index), interpreter steps at death, mismatch kind and
	// binding family — plus the generated → pre-filtered → dispatched →
	// killed/superseded → survivor search funnel. Render with
	// KillTable.WriteSearchReport (`facc -search-report`) or persist the
	// discriminating inputs across runs via obs.CexPool (`-cex-pool`).
	// Nil (the default) costs nothing on the verdict path.
	Kills *KillTable
	// Cex, when non-nil, is a read-write counterexample pool: synthesis
	// replays its ranked discriminating inputs *first* — before any
	// fresh fuzz cases — so known-lethal counterexamples kill losing
	// candidates at the first case instead of deep into a fuzz batch,
	// and every kill recorded during search updates the pool's ranking
	// live (kills, family spread, last-useful time) so the next compile
	// replays an even better-ordered pool. Persist across runs with
	// obs.CexPool Load/Flush (`-cex-pool`). Replay only reorders each
	// candidate's own deterministic case stream — it never injects
	// foreign inputs — so the winning adapter is byte-identical with or
	// without a pool. Nil (the default) costs nothing.
	Cex *CexPool
	// Oracle, when non-nil, is a shared reference-oracle cache. Oracle
	// keys are target-independent (the user program's output does not
	// depend on which accelerator we bind to), so one cache passed to
	// compiles of the same source against ffta, powerquad and fftw
	// interprets each distinct reference run once and shares it across
	// all three. Nil (the default) gives each compile a private cache —
	// candidates within one compile still share.
	Oracle *OracleCache

	// Deadline bounds the whole compilation's wall clock: past it the
	// pipeline stops promptly (the interpreter polls it inside each fuzz
	// run) and Compile returns an error wrapping
	// context.DeadlineExceeded. Zero means no deadline. Callers that
	// already hold a context should use CompileContext instead.
	Deadline time.Duration
	// CandidateTimeout bounds fuzzing one binding candidate. A candidate
	// that exceeds it is rejected (a "timeout" verdict in the journal)
	// and synthesis moves to the next candidate — a hung candidate costs
	// one candidate, not the compile. Zero disables the budget.
	CandidateTimeout time.Duration
	// Faults, when non-nil, injects accelerator faults per the profile
	// (transient errors, value corruption, latency spikes — seeded and
	// deterministic) and hardens the execution path with retries and a
	// circuit breaker that degrades to the pure-software FFT. Production
	// use leaves this nil and still gets retry+breaker via Harden; the
	// profile exists for chaos testing the pipeline's fault tolerance.
	Faults *FaultProfile
	// Harden installs the retry + circuit-breaker chain around the
	// accelerator even with no fault profile (graceful degradation for a
	// real flaky backend). Implied by Faults != nil.
	Harden bool
}

// FaultProfile configures injected accelerator faults for chaos testing;
// see Options.Faults. Rates are probabilities per accelerator call.
type FaultProfile = faultinject.Profile

// ParseFaultProfile parses the -faults flag syntax — explicit rates
// ("error=0.3,corrupt=0.01,latency=0.1,seed=7"; all keys optional) or a
// named preset with optional overrides ("chaos", "flaky,seed=9") — into
// a profile for Options.Faults. Unknown preset names, unknown keys,
// duplicates and out-of-range or non-finite rates are rejected.
func ParseFaultProfile(s string) (FaultProfile, error) {
	return faultinject.ParseProfile(s)
}

// Tracer collects hierarchical spans and metrics across a compilation; see
// NewTracer. Safe for concurrent use by parallel compilations.
type Tracer = obs.Tracer

// NewTracer returns an empty tracer to pass via Options.Trace.
func NewTracer() *Tracer { return obs.New() }

// Journal is the synthesis provenance journal; see Options.Journal.
type Journal = obs.Journal

// NewJournal returns an empty journal to pass via Options.Journal.
func NewJournal() *Journal { return obs.NewJournal() }

// Ledger is the synthesis cost ledger; see Options.Ledger.
type Ledger = obs.Ledger

// NewLedger returns an empty ledger to pass via Options.Ledger.
func NewLedger() *Ledger { return obs.NewLedger() }

// KillTable is the search observatory's kill-attribution table; see
// Options.Kills.
type KillTable = obs.KillTable

// NewKillTable returns an empty kill table to pass via Options.Kills.
func NewKillTable() *KillTable { return obs.NewKillTable() }

// CexPool is the persistent counterexample pool; see Options.Cex.
type CexPool = obs.CexPool

// NewCexPool returns an empty counterexample pool to pass via
// Options.Cex (or load a persisted one with obs.LoadCexPool).
func NewCexPool() *CexPool { return obs.NewCexPool() }

// OracleCache is the shared target-independent reference-oracle cache;
// see Options.Oracle.
type OracleCache = synth.OracleCache

// NewOracleCache returns an empty oracle cache to pass via
// Options.Oracle across compiles of one source against several targets.
func NewOracleCache() *OracleCache { return synth.NewOracleCache() }

// Classifier is the trained ProGraML-style candidate detector.
type Classifier = core.Classifier

// Train trains the classifier on the OJClone-style dataset with the given
// instances per class (the paper uses 20).
func Train(perClass int, seed int64) (*Classifier, error) {
	return core.TrainClassifier(perClass, seed)
}

// Result is the outcome of a compilation.
type Result struct {
	c *core.Compilation
}

// Compile compiles MiniC source against a named target.
func Compile(name, source, target string, opts Options) (*Result, error) {
	return CompileContext(context.Background(), name, source, target, opts)
}

// CompileRequest is the service-facing description of one compilation —
// everything a remote client may vary per request, in a form that can be
// serialized, validated, and content-addressed. It is the unit of work
// faccd admits, deduplicates (identical in-flight requests share one
// compile) and memoizes in the crash-safe adapter store.
type CompileRequest struct {
	// Name labels the source in diagnostics (a file name). It does not
	// affect the synthesized adapter and is excluded from Digest, so two
	// clients uploading the same source under different names share one
	// cache entry.
	Name string `json:"name,omitempty"`
	// Source is the MiniC translation unit to compile.
	Source string `json:"source"`
	// Target names the accelerator (ffta, powerquad, fftw).
	Target string `json:"target"`
	// Entry pins the function to compile; empty = detect candidates.
	Entry string `json:"entry,omitempty"`
	// ProfileValues is the value-profiling environment (Options.ProfileValues).
	ProfileValues map[string][]int64 `json:"profile,omitempty"`
	// NumTests overrides the IO examples per candidate (0 = default 10).
	NumTests int `json:"tests,omitempty"`
	// Tolerance overrides the comparison tolerance (0 = default 2e-3).
	Tolerance float64 `json:"tolerance,omitempty"`
}

// Validate rejects requests the pipeline could not act on, with messages
// fit to return to a remote caller verbatim.
func (r *CompileRequest) Validate() error {
	if strings.TrimSpace(r.Source) == "" {
		return fmt.Errorf("empty source")
	}
	if r.Target == "" {
		return fmt.Errorf("missing target (one of: %s)", strings.Join(Targets(), ", "))
	}
	if _, err := accel.SpecByName(r.Target); err != nil {
		return fmt.Errorf("unknown target %q (one of: %s)", r.Target, strings.Join(Targets(), ", "))
	}
	if r.NumTests < 0 {
		return fmt.Errorf("tests must be >= 0, got %d", r.NumTests)
	}
	if r.Tolerance < 0 {
		return fmt.Errorf("tolerance must be >= 0, got %g", r.Tolerance)
	}
	return nil
}

// Digest returns the request's content address: a hex SHA-256 over every
// field that can change the synthesized adapter (source, target, entry,
// profile values, test count, tolerance — not Name). Equal digests mean
// a cached or in-flight result can be reused byte for byte.
func (r *CompileRequest) Digest() string {
	h := sha256.New()
	put := func(field, val string) {
		binary.Write(h, binary.LittleEndian, int64(len(field)))
		h.Write([]byte(field))
		binary.Write(h, binary.LittleEndian, int64(len(val)))
		h.Write([]byte(val))
	}
	put("source", r.Source)
	put("target", r.Target)
	put("entry", r.Entry)
	put("tests", fmt.Sprint(r.NumTests))
	put("tolerance", fmt.Sprint(r.Tolerance))
	keys := make([]string, 0, len(r.ProfileValues))
	for k := range r.ProfileValues {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		put("profile."+k, fmt.Sprint(r.ProfileValues[k]))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CompileRequestContext compiles one service request under ctx. Request
// fields override the matching Options fields; everything else (workers,
// budgets, hardening, tracing) comes from opts — the server's standing
// configuration.
func CompileRequestContext(ctx context.Context, req CompileRequest, opts Options) (*Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	opts.Entry = req.Entry
	opts.ProfileValues = req.ProfileValues
	if req.NumTests > 0 {
		opts.NumTests = req.NumTests
	}
	if req.Tolerance > 0 {
		opts.Tolerance = req.Tolerance
	}
	name := req.Name
	if name == "" {
		name = "request.c"
	}
	return CompileContext(ctx, name, req.Source, req.Target, opts)
}

// CompileContext compiles MiniC source against a named target under ctx:
// cancel it (or let Options.Deadline expire) and the pipeline stops
// promptly — between candidates, between IO cases, and inside the
// interpreter's step loop — returning an error that wraps ctx.Err().
func CompileContext(ctx context.Context, name, source, target string, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
		defer cancel()
	}
	spec, err := accel.SpecByName(target)
	if err != nil {
		return nil, err
	}
	hardenSpec(spec, opts)
	comp, err := core.CompileSource(ctx, name, source, spec, core.Options{
		Entry:         opts.Entry,
		ProfileValues: opts.ProfileValues,
		Classifier:    opts.Classifier,
		Trace:         opts.Trace,
		Journal:       opts.Journal,
		Ledger:        opts.Ledger,
		Kills:         opts.Kills,
		Synth: synth.Options{
			NumTests:         opts.NumTests,
			Tolerance:        opts.Tolerance,
			CandidateTimeout: opts.CandidateTimeout,
			Workers:          opts.Workers,
			Cex:              opts.Cex,
			Oracle:           opts.Oracle,
			Binding:          bindingOptions(opts),
		},
	})
	if err != nil {
		return nil, err
	}
	return &Result{c: comp}, nil
}

// hardenSpec installs the fault-tolerance chain (fault injector when a
// profile is set, retry, circuit breaker with software-FFT degradation)
// on the compilation's private spec instance. Breaker state changes are
// journaled so -explain shows when and why the run degraded; counters
// land in the tracer's registry, visible at /status and /metrics.
func hardenSpec(spec *accel.Spec, opts Options) {
	if opts.Faults == nil && !opts.Harden {
		return
	}
	var profile FaultProfile
	if opts.Faults != nil {
		profile = *opts.Faults
	}
	var reg *obs.Registry
	if opts.Trace != nil {
		reg = opts.Trace.Metrics()
	}
	br := faultinject.Harden(spec, profile, reg)
	if j := opts.Journal; j != nil {
		br.OnStateChange = func(from, to faultinject.State) {
			detail := fmt.Sprintf("accelerator breaker %s → %s", from, to)
			if to == faultinject.Open {
				detail += " (degrading to software FFT)"
			}
			j.Record(obs.JournalEvent{Kind: obs.KindDegraded,
				Outcome: to.String(), Detail: detail})
		}
	}
}

func bindingOptions(opts Options) binding.Options {
	return binding.Options{
		DisableRangeHeuristic: opts.DisableRangeHeuristic,
		DisableSingleRead:     opts.DisableSingleRead,
	}
}

// OK reports whether an adapter was synthesized.
func (r *Result) OK() bool { return r.c.Success() != nil }

// AdapterC returns the generated drop-in replacement C source, or "".
func (r *Result) AdapterC() string {
	if s := r.c.Success(); s != nil {
		return s.AdapterC
	}
	return ""
}

// Function returns the name of the replaced function, or "".
func (r *Result) Function() string {
	if s := r.c.Success(); s != nil {
		return s.Function
	}
	return ""
}

// Sig returns the user-visible signature of the replaced function — the
// iogen.UserSig of the winning binding candidate (spec, argument roles,
// length binding, direction). Two requests with the same Sig asked for
// the same adapter shape; faccd persists it so the store's by-signature
// index can answer "every cached adapter with this shape" in one walk.
// Returns "" when the compilation did not succeed.
func (r *Result) Sig() string {
	s := r.c.Success()
	if s == nil || s.Result == nil || s.Result.Adapter == nil || s.Result.Adapter.Cand == nil {
		return ""
	}
	return iogen.UserSig(s.Result.Adapter.Cand)
}

// FailReason classifies an unsuccessful compilation (Fig. 8 categories:
// printf, void-pointer, nested-memory, interface-incompatibility), or "".
func (r *Result) FailReason() string { return r.c.FailReason() }

// Candidates returns the number of binding candidates enumerated across
// every attempted function — the Fig. 16 metric for the whole translation
// unit.
func (r *Result) Candidates() int { return r.c.TotalCandidates() }

// Report renders a per-function compilation report: candidates
// enumerated, fuzz-tested, survivors, the winning binding, and timing —
// the transparency a developer signing off on a replacement needs.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "target: %s (%s)\n", r.c.Target.Name, r.c.Target.DomainDescription())
	for _, fr := range r.c.Functions {
		status := "rejected"
		if fr.AdapterC != "" {
			status = "replaced"
		}
		fmt.Fprintf(&b, "%-20s %-9s candidates=%d tested=%d survivors=%d time=%s",
			fr.Function, status, fr.Result.Candidates, fr.Result.Tested,
			fr.Result.Survivors, fmtDuration(fr.Elapsed))
		if fr.Result.Adapter != nil {
			fmt.Fprintf(&b, "\n%-20s binding: %s; post: %s; check: %s",
				"", fr.Result.Adapter.Cand.Key(), fr.Result.Adapter.Post,
				fr.Result.Adapter.Check.CCondition("len"))
		} else if fr.Result.FailReason != "" {
			fmt.Fprintf(&b, " reason=%s", fr.Result.FailReason)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// fmtDuration renders a stage duration at microsecond resolution:
// synthesis stages routinely finish in well under a millisecond, where
// time.Duration.Round(time.Millisecond) prints an unhelpful "0s".
func fmtDuration(d time.Duration) string {
	if d < time.Second {
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	}
	return fmt.Sprintf("%.2fs", d.Seconds())
}

// IntegratedUnit renders the whole translation unit with acceleration
// woven in (paper Fig. 1): call sites rewritten to the adapter, the
// original function kept for the fallback path, adapters appended.
func (r *Result) IntegratedUnit() (string, error) { return r.c.IntegratedUnit() }

// Raw exposes the underlying compilation for advanced inspection.
func (r *Result) Raw() *core.Compilation { return r.c }

// Migration is a validated library→accelerator adapter (the paper's §10
// direction: users who already restructured around a library keep
// benefiting from new hardware).
type Migration = core.Migration

// Migrate synthesizes an adapter implementing the `from` target's API via
// the `to` target, fuzz-validated on the domain overlap. Example:
// Migrate(TargetFFTW, TargetFFTA) yields an fftw_call replacement that
// runs forward power-of-two transforms on the FFTA (denormalizing its
// output) and falls back to the library otherwise.
func Migrate(from, to string) (*Migration, error) {
	fs, err := accel.SpecByName(from)
	if err != nil {
		return nil, err
	}
	ts, err := accel.SpecByName(to)
	if err != nil {
		return nil, err
	}
	return core.MigrateLibrary(fs, ts, 10, 1)
}

// Benchmark re-exports one corpus program.
type Benchmark = bench.Benchmark

// Corpus returns the paper's 25-program benchmark suite.
func Corpus() []*Benchmark { return bench.Suite() }

// CorpusBenchmark finds a corpus program by name.
func CorpusBenchmark(name string) (*Benchmark, error) { return bench.ByName(name) }

// Targets lists the available target names.
func Targets() []string {
	var out []string
	for _, s := range accel.Specs() {
		out = append(out, s.Name)
	}
	return out
}

// String renders a one-line summary.
func (r *Result) String() string {
	if r.OK() {
		return fmt.Sprintf("facc: replaced %s with %s adapter (%d candidates considered)",
			r.Function(), r.c.Target.Name, r.Candidates())
	}
	return fmt.Sprintf("facc: no adapter (%s)", r.FailReason())
}
