package facc

import (
	"strings"
	"testing"

	"facc/internal/bench"
)

// TestBitReversedContractGetsBitrevPatch: project06's bit-reversed output
// contract must synthesize a bit-reverse post-op in the adapter.
func TestBitReversedContractGetsBitrevPatch(t *testing.T) {
	b, _ := bench.ByName("smalldif")
	res, err := Compile(b.File, b.Source(), TargetPowerQuad, Options{
		Entry: b.Entry, ProfileValues: b.ProfileValues, NumTests: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("failed: %s", res.FailReason())
	}
	if !strings.Contains(res.AdapterC(), "bit_reverse_permute(__acc_out, __len);") {
		t.Fatalf("adapter lacks bit-reverse patch:\n%s", res.AdapterC())
	}
}
