package facc

// End-to-end execution of emitted adapters: the generated C is appended to
// the user's translation unit together with a MiniC model of the device
// API, and the whole thing runs in the interpreter. The adapter function
// must agree with the original user function on accelerated inputs AND
// take the fallback path outside the device domain.

import (
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"

	"facc/internal/bench"
	"facc/internal/interp"
	"facc/internal/minic"
)

// deviceModels provides MiniC implementations of each accelerator call,
// functionally identical to the Go simulators (including the FFTA's
// normalization quirk).
var deviceModels = map[string]string{
	"ffta": `
void accel_cfft(float_complex* in, float_complex* out, int len) {
    for (int k = 0; k < len; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < len; j++) {
            double a = -2.0 * M_PI * (double)j * (double)k / (double)len;
            sre += (double)in[j].re * cos(a) - (double)in[j].im * sin(a);
            sim += (double)in[j].re * sin(a) + (double)in[j].im * cos(a);
        }
        out[k].re = (float)(sre / (double)len);
        out[k].im = (float)(sim / (double)len);
    }
}`,
	"powerquad": `
void pq_cfft(float_complex* in, float_complex* out, int length) {
    for (int k = 0; k < length; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < length; j++) {
            double a = -2.0 * M_PI * (double)j * (double)k / (double)length;
            sre += (double)in[j].re * cos(a) - (double)in[j].im * sin(a);
            sim += (double)in[j].re * sin(a) + (double)in[j].im * cos(a);
        }
        out[k].re = (float)sre;
        out[k].im = (float)sim;
    }
}`,
	"fftw": `
void fftw_call(float_complex* in, float_complex* out, int length, int direction, int flags) {
    double sign = (double)direction;
    for (int k = 0; k < length; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < length; j++) {
            double a = sign * 2.0 * M_PI * (double)j * (double)k / (double)length;
            sre += (double)in[j].re * cos(a) - (double)in[j].im * sin(a);
            sim += (double)in[j].re * sin(a) + (double)in[j].im * cos(a);
        }
        out[k].re = (float)sre;
        out[k].im = (float)sim;
    }
}`,
}

// runAdapterEndToEnd compiles benchmark bm to target, builds a combined
// translation unit (user code + adapter + device model), and compares
// <entry>_accel against <entry> on the given size.
func runAdapterEndToEnd(t *testing.T, name, target string, n int) {
	t.Helper()
	bm, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(bm.File, bm.Source(), target, Options{
		Entry:         bm.Entry,
		ProfileValues: bm.ProfileValues,
		NumTests:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("compile failed: %s", res.FailReason())
	}
	combined := bm.Source() + "\n" + res.AdapterC() + "\n" + deviceModels[target]
	f, err := minic.ParseAndCheck("combined.c", combined)
	if err != nil {
		t.Fatalf("combined unit does not compile: %v", err)
	}
	m, err := interp.NewMachine(f)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxSteps = 1_000_000_000

	entry := f.Func(bm.Entry)
	elem := entry.Params[0].Type.Decay().Elem

	rng := rand.New(rand.NewSource(31))
	in := make([]complex128, n)
	for i := range in {
		in[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}

	run := func(fnName string) []complex128 {
		arr, err := m.NewArray("buf", elem, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetStructComplexArray(arr, in, 0, 1); err != nil {
			t.Fatal(err)
		}
		args := []interp.Value{arr}
		for _, prm := range entry.Params[1:] {
			_ = prm
			args = append(args, interp.IntValue(int64(n)))
		}
		if _, err := m.CallNamed(fnName, args); err != nil {
			t.Fatalf("%s: %v", fnName, err)
		}
		out, err := m.GetStructComplexArray(arr, n, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	want := run(bm.Entry)
	got := run(bm.Entry + "_accel")

	norm := 0.0
	for _, v := range want {
		if mag := cmplx.Abs(v); mag > norm {
			norm = mag
		}
	}
	for i := range want {
		if d := cmplx.Abs(want[i] - got[i]); d > 2e-3*(1+norm) {
			t.Fatalf("adapter diverges at [%d]: user %v vs adapter %v", i, want[i], got[i])
		}
	}
}

func TestEmittedAdapterExecutesFFTA(t *testing.T) {
	if testing.Short() {
		t.Skip("interprets O(n^2) device model")
	}
	// iterdit: in-place struct FFT; the FFTA device model normalizes, the
	// adapter's denormalize patch must undo it.
	runAdapterEndToEnd(t, "iterdit", TargetFFTA, 64)
}

func TestEmittedAdapterExecutesPowerQuad(t *testing.T) {
	if testing.Short() {
		t.Skip("interprets O(n^2) device model")
	}
	runAdapterEndToEnd(t, "normdit", TargetPowerQuad, 32)
}

// The fallback path: sizes outside the device domain must route to the
// original user code and still produce correct results.
func TestEmittedAdapterFallbackPath(t *testing.T) {
	bm, err := bench.ByName("iterdit")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(bm.File, bm.Source(), TargetFFTA, Options{
		Entry:         bm.Entry,
		ProfileValues: map[string][]int64{"n": {16, 64, 128}}, // 16 < FFTA MinN
		NumTests:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("compile failed: %s", res.FailReason())
	}
	if !strings.Contains(res.AdapterC(), "n >= 64") {
		t.Fatalf("expected min-size check:\n%s", res.AdapterC())
	}
	combined := bm.Source() + "\n" + res.AdapterC() + "\n" + deviceModels[TargetFFTA]
	f, err := minic.ParseAndCheck("combined.c", combined)
	if err != nil {
		t.Fatal(err)
	}
	m, err := interp.NewMachine(f)
	if err != nil {
		t.Fatal(err)
	}
	// n = 16 is below the FFTA minimum: the adapter must fall back to the
	// software path (which is exact), so outputs match the user function
	// bit-for-bit.
	n := 16
	elem := f.Func(bm.Entry).Params[0].Type.Decay().Elem
	rng := rand.New(rand.NewSource(5))
	in := make([]complex128, n)
	for i := range in {
		in[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	run := func(fnName string) []complex128 {
		arr, err := m.NewArray("buf", elem, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetStructComplexArray(arr, in, 0, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := m.CallNamed(fnName, []interp.Value{arr, interp.IntValue(int64(n))}); err != nil {
			t.Fatalf("%s: %v", fnName, err)
		}
		out, err := m.GetStructComplexArray(arr, n, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(bm.Entry)
	got := run(bm.Entry + "_accel")
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("fallback path diverges at [%d]: %v vs %v — exact match expected",
				i, want[i], got[i])
		}
	}
	if math.IsNaN(real(got[0])) {
		t.Fatal("NaN output")
	}
}

// TestIntegratedUnitExecutes runs the complete Fig. 1 flow: compile,
// rewrite call sites, append the adapter and a device model, then run the
// application driver through the interpreter — the integrated app must
// compute exactly what the original did (up to accelerator precision).
func TestIntegratedUnitExecutes(t *testing.T) {
	app := `
#include <math.h>
typedef struct { double re; double im; } cpx;
void fft(cpx* x, int n) {
    cpx out[n];
    for (int k = 0; k < n; k++) {
        double sre = 0.0;
        double sim = 0.0;
        for (int j = 0; j < n; j++) {
            double a = -2.0 * M_PI * (double)j * (double)k / (double)n;
            sre += x[j].re * cos(a) - x[j].im * sin(a);
            sim += x[j].re * sin(a) + x[j].im * cos(a);
        }
        out[k].re = sre;
        out[k].im = sim;
    }
    for (int k = 0; k < n; k++) x[k] = out[k];
}
double spectral_energy(cpx* buf, int n) {
    fft(buf, n);
    double e = 0.0;
    for (int i = 0; i < n; i++) {
        e += buf[i].re * buf[i].re + buf[i].im * buf[i].im;
    }
    return e / (double)n;
}`
	res, err := Compile("app.c", app, TargetPowerQuad, Options{
		Entry:         "fft",
		ProfileValues: map[string][]int64{"n": {16, 32}},
		NumTests:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("compile: %s", res.FailReason())
	}
	unit, err := res.IntegratedUnit()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(unit, "fft_accel(buf, n);") {
		t.Fatalf("driver not rewritten:\n%s", unit)
	}

	runEnergy := func(src string) float64 {
		f, err := minic.ParseAndCheck("app.c", src)
		if err != nil {
			t.Fatalf("unit invalid: %v", err)
		}
		m, err := interp.NewMachine(f)
		if err != nil {
			t.Fatal(err)
		}
		n := 16
		elem := f.Func("fft").Params[0].Type.Decay().Elem
		arr, err := m.NewArray("buf", elem, n)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(77))
		in := make([]complex128, n)
		for i := range in {
			in[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		if err := m.SetStructComplexArray(arr, in, 0, 1); err != nil {
			t.Fatal(err)
		}
		v, err := m.CallNamed("spectral_energy", []interp.Value{arr, interp.IntValue(int64(n))})
		if err != nil {
			t.Fatal(err)
		}
		return v.Float()
	}

	orig := runEnergy(app)
	integrated := runEnergy(unit + "\n" + deviceModels[TargetPowerQuad])
	if d := math.Abs(orig-integrated) / (1 + math.Abs(orig)); d > 1e-5 {
		t.Fatalf("integrated app diverges: %g vs %g (rel %g)", orig, integrated, d)
	}
}
