package facc

// Differential testing across the whole corpus: every supported benchmark
// is compiled against every accelerator target, and the resulting adapter
// is replayed on fresh seeded inputs through three independent routes —
// (a) the original user program in the interpreter, (b) the generated
// adapter running over the MiniC device model, and (c) the pure software
// reference DFT — with pairwise agreement required within the paper's
// single-precision tolerance. Unlike the synthesis fuzzer (which tests the
// *binding* against the Go accelerator simulator), this exercises the
// emitted C end to end on inputs the fuzzer never saw.

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"facc/internal/bench"
	"facc/internal/fft"
)

// differentialTargets is the full device matrix for the suite.
var differentialTargets = []string{"ffta", "powerquad", "fftw"}

// diffSizes picks the replay sizes: 64 is in every benchmark's domain, 128
// exercises a second accelerated length where supported, and 96 (non-pow2,
// "all"-lengths implementations only) forces the adapter's fallback path.
func diffSizes(b *bench.Benchmark) []int {
	sizes := []int{64}
	if b.SupportsSize(128) {
		sizes = append(sizes, 128)
	}
	if b.SupportsSize(96) {
		sizes = append(sizes, 96)
	}
	return sizes
}

// maxAbsDiff returns max_i |a[i]-b[i]| and the norm max_i |a[i]|.
func maxAbsDiff(a, b []complex128) (diff, norm float64) {
	for i := range a {
		if m := cmplx.Abs(a[i]); m > norm {
			norm = m
		}
		if d := cmplx.Abs(a[i] - b[i]); d > diff {
			diff = d
		}
	}
	return diff, norm
}

func TestDifferentialSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite compiles the whole corpus; skipped in -short")
	}
	seeds := []int64{11, 22, 33}
	compiled := 0
	for _, bm := range bench.SupportedSuite() {
		if len(bm.Driver) == 0 {
			continue
		}
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			anyTarget := false
			for _, target := range differentialTargets {
				res, err := Compile(bm.File, bm.Source(), target, Options{
					Entry:         bm.Entry,
					ProfileValues: bm.ProfileValues,
					NumTests:      4,
				})
				if err != nil {
					t.Fatalf("%s: %v", target, err)
				}
				if !res.OK() {
					t.Logf("%s: no adapter (%s)", target, res.FailReason())
					continue
				}
				anyTarget = true
				compiled++
				runDifferential(t, bm, target, res, seeds)
			}
			if !anyTarget {
				t.Errorf("no target compiled %s, differential test vacuous", bm.Name)
			}
		})
	}
	t.Logf("differential suite covered %d (benchmark, target) adapters", compiled)
}

// runDifferential replays one synthesized adapter against the original
// program and the reference DFT on fresh inputs.
func runDifferential(t *testing.T, bm *bench.Benchmark, target string, res *Result, seeds []int64) {
	t.Helper()
	combined := bm.Source() + "\n" + res.AdapterC() + "\n" + deviceModels[target]
	user, err := bench.NewRunnerUnit(bm, bm.File, combined, bm.Entry)
	if err != nil {
		t.Errorf("%s: user leg: %v", target, err)
		return
	}
	accel, err := bench.NewRunnerUnit(bm, bm.File, combined, bm.Entry+"_accel")
	if err != nil {
		t.Errorf("%s: adapter leg: %v", target, err)
		return
	}
	for _, n := range diffSizes(bm) {
		nSeeds := seeds
		if n > 64 {
			// All seeds replay at the primary size; the larger sizes
			// (second accelerated length, fallback path) get one each —
			// they cover routing, not value diversity.
			nSeeds = seeds[:1]
		}
		for _, seed := range nSeeds {
			rng := rand.New(rand.NewSource(seed*1000 + int64(bm.ID)))
			in := make([]complex128, n)
			for i := range in {
				in[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}

			want, err := user.Run(in)
			if err != nil {
				t.Errorf("%s n=%d seed=%d: user program: %v", target, n, seed, err)
				return
			}
			got, err := accel.Run(in)
			if err != nil {
				t.Errorf("%s n=%d seed=%d: adapter: %v", target, n, seed, err)
				return
			}
			ref := fft.DFT(in, fft.Forward)
			if bm.Normalized {
				fft.Normalize(ref)
			}
			if bm.BitReversedOut {
				fft.BitReverse(ref)
			}

			// Pairwise agreement, norm-scaled single-precision tolerance.
			pairs := []struct {
				name string
				a, b []complex128
			}{
				{"user vs adapter", want, got},
				{"user vs reference", want, ref},
				{"adapter vs reference", got, ref},
			}
			for _, p := range pairs {
				if diff, norm := maxAbsDiff(p.a, p.b); diff > 2e-3*(1+norm) {
					t.Errorf("%s n=%d seed=%d: %s diverge: max |Δ| = %g (norm %g)",
						target, n, seed, p.name, diff, norm)
				}
			}
		}
	}
}
