package facc

import (
	"context"
	"strings"
	"testing"

	"facc/internal/accel"
	"facc/internal/bench"
	"facc/internal/minic"
	"facc/internal/synth"
)

// TestCompileWithExecutedProfile drives the full paper workflow: build the
// value profile by *running* the application driver (not hand tables),
// then compile with it.
func TestCompileWithExecutedProfile(t *testing.T) {
	b, err := bench.ByName("iterdit")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := bench.CollectProfile(b)
	if err != nil {
		t.Fatal(err)
	}
	f, err := minic.ParseAndCheck(b.File, b.Source())
	if err != nil {
		t.Fatal(err)
	}
	res, err := synth.Synthesize(context.Background(), f, f.Func(b.Entry), accel.NewFFTA(), prof,
		synth.Options{NumTests: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Adapter == nil {
		t.Fatalf("no adapter with executed profile: %s", res.FailReason)
	}
	if res.Adapter.Cand.Length.Param != "n" {
		t.Errorf("length binding = %+v", res.Adapter.Cand.Length)
	}
	// The executed profile saw only powers of two within the FFTA domain,
	// so the range check needs no power-of-two test...
	check := res.Adapter.Check
	if check.NeedPowerOfTwo {
		t.Error("profiled pow2-only range should drop the pow2 check")
	}
	// ...but the profile's max (512) is inside the domain, so min/max
	// constraints may drop as well; the check must still pass for the
	// profiled values.
	if !check.Pass(128, nil) {
		t.Error("check rejects profiled value")
	}
}

// TestMigratePublicAPI exercises facc.Migrate.
func TestMigratePublicAPI(t *testing.T) {
	mig, err := Migrate(TargetFFTW, TargetFFTA)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mig.EmitC(), "accel_cfft") {
		t.Error("migration adapter missing target call")
	}
	if _, err := Migrate("tpu", TargetFFTA); err == nil {
		t.Error("unknown source target should error")
	}
	if _, err := Migrate(TargetFFTW, "tpu"); err == nil {
		t.Error("unknown dest target should error")
	}
}
