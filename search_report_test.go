package facc

import (
	"bytes"
	"strings"
	"testing"
)

// searchReportGolden pins the full -search-report output for the same
// two-region translation unit the explain golden uses: scale's two
// binding candidates both die on case 0 (two distinct binding families
// — the discriminating-input ranking's acceptance property), fft's
// first candidate survives and wins. Workers=1 and the fixed fuzz seed
// make this byte-stable; if it drifts, kill-attribution semantics
// changed.
const searchReportGolden = `search funnel: 8 generated, 4 pre-filtered, 3 dispatched, 2 killed, 0 superseded, 1 survived, 1 winner(s)

kill depth (0-based case index at death):
  case 0: 2 kill(s)

mismatch kinds:
  behavior-mismatch: 2

top discriminating inputs:
   1. [ffta] seed=424242 n=64 case=0 — 2 kill(s) across 2 binding family(ies)
cases killing more than one binding family: 1

per target:
  ffta       generated 8, dispatched 3, killed 2, survived 1, winners 1, multi-family cases 1
`

func TestSearchReportGolden(t *testing.T) {
	src := `
#include <math.h>
typedef struct { double re; double im; } cpx;
void scale(cpx* x, int n) {
    for (int i = 0; i < n; i++) {
        x[i].re = x[i].re * 2.0;
        x[i].im = x[i].im * 2.0;
    }
}` + strings.TrimPrefix(quickstartSrc, `
#include <math.h>
typedef struct { double re; double im; } cpx;`)

	k := NewKillTable()
	res, err := Compile("two.c", src, TargetFFTA, Options{
		ProfileValues: map[string][]int64{"n": {64, 128, 256}},
		NumTests:      4,
		Workers:       1, // kill counts are only deterministic sequentially
		Kills:         k,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Function() != "fft" {
		t.Fatalf("fixture drifted: ok=%v fn=%q (%s)",
			res.OK(), res.Function(), res.FailReason())
	}

	var buf bytes.Buffer
	if err := k.WriteSearchReport(&buf, 10); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != searchReportGolden {
		t.Errorf("search report drifted from golden.\n--- got ---\n%s--- want ---\n%s",
			got, searchReportGolden)
	}
}

// TestKillTableAbsentNoChange: the observatory is measurement only —
// the same compile with and without a kill table (and with a populated
// counterexample pool on disk, which this PR loads but never consults
// during search) produces byte-identical adapter C.
func TestKillTableAbsentNoChange(t *testing.T) {
	adapter := func(kills *KillTable) string {
		res, err := Compile("q.c", quickstartSrc, TargetFFTA, Options{
			ProfileValues: map[string][]int64{"n": {64, 128, 256}},
			NumTests:      4,
			Workers:       1,
			Kills:         kills,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() {
			t.Fatalf("no adapter: %s", res.FailReason())
		}
		return res.AdapterC()
	}
	with := adapter(NewKillTable())
	without := adapter(nil)
	if with != without {
		t.Error("attaching a kill table changed the synthesized adapter")
	}
}
