package facc_test

import (
	"fmt"
	"log"
	"strings"

	"facc"
)

// ExampleCompile shows the minimal workflow: hand FACC a legacy C source
// and a value profile, get back a drop-in accelerator adapter.
func ExampleCompile() {
	legacy := `
#include <math.h>
#include <complex.h>
void dft(double complex* in, double complex* out, int n) {
    for (int k = 0; k < n; k++) {
        double complex sum = 0.0;
        for (int j = 0; j < n; j++) {
            sum += in[j] * cexp(-2.0 * M_PI * I * (double)j * (double)k / (double)n);
        }
        out[k] = sum;
    }
}`
	res, err := facc.Compile("legacy.c", legacy, facc.TargetPowerQuad, facc.Options{
		ProfileValues: map[string][]int64{"n": {16, 32, 64}},
		NumTests:      4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ok:", res.OK())
	fmt.Println("replaced:", res.Function())
	fmt.Println("calls accelerator:", strings.Contains(res.AdapterC(), "pq_cfft("))
	// Output:
	// ok: true
	// replaced: dft
	// calls accelerator: true
}

// ExampleMigrate shows library-to-hardware migration (paper §10).
func ExampleMigrate() {
	mig, err := facc.Migrate(facc.TargetFFTW, facc.TargetFFTA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("patch:", mig.Post.String())
	fmt.Println("forward only:", mig.ForwardOnly)
	// Output:
	// patch: denormalize(*N)
	// forward only: true
}
