# FACC reproduction — convenience targets. Everything is plain `go` under
# the hood; the Makefile just names the common workflows.

GO ?= go

.PHONY: all build test test-short test-race bench repro repro-full examples fmt lint vet check clean

all: build test

# Tier-1 gate: formatting + vet + tests + race detector.
check: lint test test-race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

# One testing.B benchmark per paper table/figure plus ablations.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Regenerate the paper's evaluation (Table 1 + Figures 8-16 + ablations).
repro:
	$(GO) run ./cmd/faccbench

# Paper-size classifier protocol for Figure 11 (slow).
repro-full:
	$(GO) run ./cmd/faccbench -experiment fig11 -full

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/embedded
	$(GO) run ./examples/library
	$(GO) run ./examples/classifier
	$(GO) run ./examples/migration

fmt:
	gofmt -w .

# Fails when any file needs gofmt, then vets.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
