# FACC reproduction — convenience targets. Everything is plain `go` under
# the hood; the Makefile just names the common workflows.

GO ?= go

.PHONY: all build test test-short bench repro repro-full examples fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# One testing.B benchmark per paper table/figure plus ablations.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Regenerate the paper's evaluation (Table 1 + Figures 8-16 + ablations).
repro:
	$(GO) run ./cmd/faccbench

# Paper-size classifier protocol for Figure 11 (slow).
repro-full:
	$(GO) run ./cmd/faccbench -experiment fig11 -full

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/embedded
	$(GO) run ./examples/library
	$(GO) run ./examples/classifier
	$(GO) run ./examples/migration

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
