# FACC reproduction — convenience targets. Everything is plain `go` under
# the hood; the Makefile just names the common workflows.

GO ?= go

.PHONY: all build test test-short test-race fuzz-smoke chaos bench bench-json bench-serve bench-gate crash-matrix search-report serve-smoke fleet-smoke repro repro-full examples fmt lint vet check clean

all: build test

# Tier-1 gate: formatting + vet + tests + race detector + fuzz smoke +
# the store crash matrix (a simulated crash at every page write, WAL
# append and fsync must recover consistently) + the faccd serve smoke
# (compile over HTTP, SIGTERM drain, crash-safe store recovery, trace-ID
# join) + the fleet smoke (3 sharded replicas, kill -9 the digest's
# owner mid-compile, survivors must rebalance and serve byte-identical
# adapters) + the bench gate (fresh synthesis and serving numbers vs the
# committed baselines).
check: lint test test-race fuzz-smoke crash-matrix serve-smoke fleet-smoke bench-gate

build:
	$(GO) build ./...

# Bounded timeout: a hung test is a robustness bug, not a slow machine —
# fail it rather than letting CI stall.
test:
	$(GO) test -timeout 240s ./...

test-short:
	$(GO) test -short -timeout 120s ./...

# The race run carries the full differential + determinism suites (every
# corpus program × every target, twice), so it gets a wider budget than
# the plain run; a hang still fails well before CI gives up.
test-race:
	$(GO) test -race -timeout 600s ./...

# Fuzz smoke: replay the committed corpus, then a short randomized run of
# each fuzz target (parser round-trip totality, interpreter
# fault-not-panic, store page/WAL decoder quarantine-not-panic).
fuzz-smoke:
	$(GO) test ./internal/minic -run '^$$' -fuzz FuzzParse -fuzztime 10s
	$(GO) test ./internal/interp -run '^$$' -fuzz FuzzInterp -fuzztime 10s
	$(GO) test ./internal/store -run '^$$' -fuzz FuzzStoreDecode -fuzztime 10s
	$(GO) test ./internal/synth -run '^$$' -fuzz FuzzCexReplay -fuzztime 10s

# Crash-point injection matrix: the adapter store is crashed at every
# durable operation (page writes, WAL appends, fsyncs, truncates, the
# compaction rename) under clean/torn/bit-flip semantics and must
# recover to a consistent state every time. CRASH_OUT keeps the report
# and the quarantine evidence for CI artifact upload.
crash-matrix:
	./scripts/crash_matrix.sh

# Fault-tolerance suite under the race detector: fault injection, retry,
# circuit breaker, panic isolation, deadline/cancellation plumbing.
chaos:
	$(GO) test -race -timeout 120s -run 'Chaos|FaultInject|Injector|Retry|Breaker|Harden|Panic|Fuel|StackOverflow|Cancel' ./...

# One testing.B benchmark per paper table/figure plus ablations.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Synthesis-engine regression numbers (corpus wall-clock, fuzz
# throughput, oracle hit rate at Workers=1 vs GOMAXPROCS, and the search
# observatory's sequential-run funnel) as a JSON artifact for
# cross-commit comparison.
# -j 4 forces the Workers=4 run even on 1-core machines, so the
# artifact always carries the worker-count pair the speedup gate reads.
bench-json:
	$(GO) run ./cmd/faccbench -experiment synthbench -j 4 -bench-out BENCH_synth.json

# Search observatory: one exhaustive sequential corpus compile with kill
# attribution on. Prints the funnel, kill-depth distribution and top
# discriminating inputs, and persists them into the crash-safe
# counterexample pool (counterexamples.jsonl) for later runs.
search-report:
	$(GO) run ./cmd/faccbench -experiment searchbench -cex-pool counterexamples.jsonl

# Serving benchmark: saturate an in-process faccd (shedding, dedup,
# adapter cache) and keep the latency/robustness numbers as a JSON
# artifact for cross-commit comparison.
bench-serve:
	$(GO) run ./cmd/faccbench -experiment servebench -bench-out BENCH_serve.json

# End-to-end daemon smoke: build faccd, compile over HTTP, SIGTERM with a
# request in flight, tear the cached adapter, restart and assert the
# store quarantines + recompiles + serves byte-identical bytes, then
# assert one trace ID joins the response header, the journal export and
# the /debug/requests flight record.
serve-smoke:
	./scripts/serve_smoke.sh

# Fleet smoke: stand up a 3-replica faccd fleet over a static peer
# table, compile through it, kill -9 the replica that owns the digest
# while a second compile is in flight, and assert the survivors eject
# the dead peer within the probe budget, finish the in-flight request
# via failover, and serve byte-identical adapter bytes for the dead
# owner's digest.
fleet-smoke:
	./scripts/fleet_smoke.sh

# Performance regression gate: measure fresh synthbench/servebench
# artifacts and compare wall-time and waste-ratio against the committed
# BENCH_synth.json / BENCH_serve.json (>GATE_TOLERANCE, default 25%,
# fails).
bench-gate:
	./scripts/bench_gate.sh

# Regenerate the paper's evaluation (Table 1 + Figures 8-16 + ablations).
repro:
	$(GO) run ./cmd/faccbench

# Paper-size classifier protocol for Figure 11 (slow).
repro-full:
	$(GO) run ./cmd/faccbench -experiment fig11 -full

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/embedded
	$(GO) run ./examples/library
	$(GO) run ./examples/classifier
	$(GO) run ./examples/migration

fmt:
	gofmt -w .

# Fails when any file needs gofmt, then vets.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
