// Command faccd is the FACC compile service: a daemon that accepts MiniC
// sources over HTTP, synthesizes accelerator adapters, and degrades
// gracefully under load and faults instead of falling over.
//
// Usage:
//
//	faccd [-addr :8080] [-store faccd-store] [-queue 64] [-workers N]
//	      [-request-timeout 2m] [-candidate-timeout 50ms]
//	      [-drain-timeout 10s] [-tests 10] [-j N] [-faults chaos]
//	      [-slo-latency 1s] [-slo-objective 0.99] [-flight-recorder 32]
//	      [-cex-pool counterexamples.jsonl]
//	      [-store-page-size 4096] [-store-compact-pages 4096]
//	      [-store-quarantine-files 512] [-store-quarantine-age 168h]
//	      [-peer-id r0 -peers r0=http://h0:8080,r1=http://h1:8080,...]
//	      [-probe-interval 1s] [-failure-threshold 3] [-max-hops 3]
//	      [-tenant-rate 0] [-tenant-burst 0] [-retry-budget 8]
//
// Endpoints:
//
//	POST /compile[?wait=1]  submit a compile request (JSON: source, target,
//	                        entry, profile, tests); 202 + job id, 429 when
//	                        the admission queue is full (Retry-After set),
//	                        503 while draining
//	GET  /jobs/{id}         job status and the synthesized adapter
//	GET  /healthz, /readyz  liveness / admission readiness
//	GET  /debug/requests    SLO flight recorder: slowest + failed requests
//	                        with span trees, journals and cost ledgers
//	GET  /metrics, /status, /trace, /debug/pprof  observability (obshttp)
//
// Tracing: every request is stamped with an X-Facc-Trace ID (client-set
// or generated) that joins the response header, span exports, journal
// events, the cost ledger and /debug/requests.
//
// Robustness: identical in-flight requests share one compile
// (singleflight); finished adapters are memoized in a crash-safe
// content-addressed store that survives kill -9 (atomic writes, WAL
// recovery, checksum verification with quarantine — a torn write is
// recompiled, never served); SIGTERM/SIGINT drains gracefully: admission
// stops, queued and in-flight jobs finish up to -drain-timeout, then
// stragglers are hard-cancelled.
//
// Fleet mode: -peers names a static table of replicas (comma-separated
// id=url pairs; -peer-id is this replica's entry). Requests are routed
// by request-digest over a consistent-hash ring, dead peers are ejected
// by health probes and forwarding failures, forwarded requests fail over
// down the ring (degrading to local synthesis as the last resort), and
// cached digests are answered by hedged cache reads. /readyz reports
// not-ready while no healthy peer covers any shard range; /fleet/peers
// and /fleet/owners expose the live ring.
//
// Exit status: 0 after a clean drain, 1 on startup errors or a drain
// that needed hard cancellation.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"facc"
	"facc/internal/fleet"
	"facc/internal/obs"
	"facc/internal/server"
	"facc/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
	addrFile := flag.String("addr-file", "",
		"write the bound address to this file once listening (for scripts)")
	storeDir := flag.String("store", "faccd-store",
		"adapter store directory (crash-safe content-addressed cache)")
	storePage := flag.Int("store-page-size", 0,
		"store B-tree page size in bytes (0 = default 4096)")
	storeCompact := flag.Int64("store-compact-pages", 0,
		"compact the store when it exceeds this many pages and half are dead (0 = default 4096, negative disables)")
	storeQuarFiles := flag.Int("store-quarantine-files", 0,
		"keep at most this many quarantined-evidence files (0 = default 512)")
	storeQuarAge := flag.Duration("store-quarantine-age", 0,
		"discard quarantined evidence older than this (0 = default 168h)")
	queue := flag.Int("queue", 64,
		"admission queue depth; requests beyond it are shed with 429")
	workers := flag.Int("workers", 0, "concurrent compile workers (0 = GOMAXPROCS)")
	requestTimeout := flag.Duration("request-timeout", 2*time.Minute,
		"wall-clock budget per compile job")
	candidateTimeout := flag.Duration("candidate-timeout", 0,
		"budget per fuzzed binding candidate (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"how long a SIGTERM drain waits for in-flight jobs before hard-cancelling")
	tests := flag.Int("tests", 10, "default IO examples per candidate (requests may override)")
	jflag := flag.Int("j", 0, "candidate-level parallelism per compile (0 = GOMAXPROCS)")
	faults := flag.String("faults", "",
		`inject accelerator faults for chaos testing, e.g. "chaos" or "error=0.3,seed=7"`)
	sloLatency := flag.Duration("slo-latency", time.Second,
		"per-request latency SLO target; slower compiles count toward the burn rate")
	sloObjective := flag.Float64("slo-objective", 0.99,
		"fraction of requests that must meet the SLO (burn rate = violation rate / error budget)")
	flightRec := flag.Int("flight-recorder", 32,
		"retain this many slowest and failed requests (full span/journal/ledger) at /debug/requests; -1 disables")
	cexPool := flag.String("cex-pool", "",
		"persist the discriminating-input counterexample pool (crash-safe JSONL) in this file across daemon runs")
	peerID := flag.String("peer-id", "",
		"this replica's ID in the fleet peer table (requires -peers)")
	peersFlag := flag.String("peers", "",
		"static fleet peer table as comma-separated id=url pairs; empty runs single-node")
	probeInterval := flag.Duration("probe-interval", time.Second,
		"fleet health-probe period (peer death is detected within a few intervals)")
	failureThreshold := flag.Int("failure-threshold", 3,
		"consecutive probe/forward failures that eject a peer from the ring")
	maxHops := flag.Int("max-hops", 3,
		"reject forwarded requests above this hop count (routing-loop guard)")
	tenantRate := flag.Float64("tenant-rate", 0,
		"per-tenant requests/sec admitted at the fleet edge (X-Facc-Tenant header; 0 disables)")
	tenantBurst := flag.Float64("tenant-burst", 0,
		"per-tenant token-bucket burst (0 = max(1, rate))")
	retryBudget := flag.Float64("retry-budget", 8,
		"node-global forwarding-retry budget in retries/sec (bounds retry storms)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "usage: faccd [flags] (takes no arguments)\n")
		flag.PrintDefaults()
		os.Exit(1)
	}

	opts := facc.Options{
		NumTests:         *tests,
		Workers:          *jflag,
		CandidateTimeout: *candidateTimeout,
		// A service hardens unconditionally: retries + breaker +
		// software-FFT degradation around every accelerator call.
		Harden: true,
	}
	if *faults != "" {
		fp, err := facc.ParseFaultProfile(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faccd: -faults: %v\n", err)
			os.Exit(1)
		}
		opts.Faults = &fp
	}

	tr := obs.New()
	st, err := store.OpenOptions(*storeDir, tr.Metrics(), store.Options{
		PageSize:           *storePage,
		AutoCompactPages:   *storeCompact,
		QuarantineMaxFiles: *storeQuarFiles,
		QuarantineMaxAge:   *storeQuarAge,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "faccd: %v\n", err)
		os.Exit(1)
	}

	// The counterexample pool survives daemon restarts: loaded before
	// serving, wired read-write into every compile (replay-first search
	// plus live kill recording, so it reranks mid-process), and flushed
	// after the drain. A corrupt pool is quarantined and the daemon
	// starts with an empty one.
	var pool *obs.CexPool
	if *cexPool != "" {
		p, info, err := obs.LoadCexPool(*cexPool)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faccd: -cex-pool %s: %v\n", *cexPool, err)
			os.Exit(1)
		}
		if info.Quarantined != "" {
			fmt.Fprintf(os.Stderr, "faccd: -cex-pool %s: corrupt pool quarantined to %s; starting empty\n",
				*cexPool, info.Quarantined)
		}
		pool = p
	}
	kills := obs.NewKillTable()

	srv := server.New(server.Config{
		QueueDepth:     *queue,
		Workers:        *workers,
		RequestTimeout: *requestTimeout,
		Store:          st,
		Tracer:         tr,
		Journal:        obs.NewJournal(),
		Ledger:         obs.NewLedger(),
		Kills:          kills,
		Cex:            pool,
		FlightRecorder: *flightRec,
		SLOLatency:     *sloLatency,
		SLOObjective:   *sloObjective,
		Options:        opts,
	})

	// Fleet mode: wrap the local server in the routing/health/limits
	// layer. The peer table is static; health is the only dynamic part.
	handler := srv.Handler()
	var node *fleet.Node
	if *peersFlag != "" {
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faccd: -peers: %v\n", err)
			os.Exit(1)
		}
		if *peerID == "" {
			fmt.Fprintf(os.Stderr, "faccd: -peers requires -peer-id\n")
			os.Exit(1)
		}
		node = fleet.New(fleet.Config{
			Self:              *peerID,
			Peers:             peers,
			Local:             srv,
			Tracer:            tr,
			ProbeInterval:     *probeInterval,
			FailureThreshold:  *failureThreshold,
			MaxHops:           *maxHops,
			ForwardTimeout:    *requestTimeout,
			TenantRate:        *tenantRate,
			TenantBurst:       *tenantBurst,
			RetryBudgetPerSec: *retryBudget,
		})
		handler = node.Handler()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faccd: %v\n", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if node != nil {
		fmt.Fprintf(os.Stderr, "faccd: serving on http://%s as fleet peer %q (store %s, queue %d)\n",
			bound, *peerID, st.Dir(), *queue)
	} else {
		fmt.Fprintf(os.Stderr, "faccd: serving on http://%s (store %s, queue %d)\n",
			bound, st.Dir(), *queue)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "faccd: %v\n", err)
			os.Exit(1)
		}
	}
	hs := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "faccd: %v\n", err)
		os.Exit(1)
	}
	stop() // a second signal now kills immediately

	if node != nil {
		node.Close() // stop probing first; peers will eject us as we stop answering
	}
	fmt.Fprintf(os.Stderr, "faccd: draining (up to %s)...\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(dctx)

	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	hs.Shutdown(hctx)
	if err := st.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "faccd: closing store: %v\n", err)
	}
	if *cexPool != "" {
		pool.Absorb(kills, time.Now())
		if err := pool.Flush(*cexPool); err != nil {
			fmt.Fprintf(os.Stderr, "faccd: flushing -cex-pool: %v\n", err)
		}
	}
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "faccd: %v\n", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "faccd: drained cleanly")
}

// parsePeers decodes the -peers table: comma-separated id=url pairs.
func parsePeers(s string) (map[string]string, error) {
	peers := map[string]string{}
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		id, url, ok := strings.Cut(pair, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("malformed pair %q (want id=url)", pair)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate peer ID %q", id)
		}
		peers[id] = strings.TrimSuffix(url, "/")
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("empty peer table")
	}
	return peers, nil
}
