// Command faccd is the FACC compile service: a daemon that accepts MiniC
// sources over HTTP, synthesizes accelerator adapters, and degrades
// gracefully under load and faults instead of falling over.
//
// Usage:
//
//	faccd [-addr :8080] [-store faccd-store] [-queue 64] [-workers N]
//	      [-request-timeout 2m] [-candidate-timeout 50ms]
//	      [-drain-timeout 10s] [-tests 10] [-j N] [-faults chaos]
//	      [-slo-latency 1s] [-slo-objective 0.99] [-flight-recorder 32]
//	      [-cex-pool counterexamples.jsonl]
//	      [-store-page-size 4096] [-store-compact-pages 4096]
//	      [-store-quarantine-files 512] [-store-quarantine-age 168h]
//
// Endpoints:
//
//	POST /compile[?wait=1]  submit a compile request (JSON: source, target,
//	                        entry, profile, tests); 202 + job id, 429 when
//	                        the admission queue is full (Retry-After set),
//	                        503 while draining
//	GET  /jobs/{id}         job status and the synthesized adapter
//	GET  /healthz, /readyz  liveness / admission readiness
//	GET  /debug/requests    SLO flight recorder: slowest + failed requests
//	                        with span trees, journals and cost ledgers
//	GET  /metrics, /status, /trace, /debug/pprof  observability (obshttp)
//
// Tracing: every request is stamped with an X-Facc-Trace ID (client-set
// or generated) that joins the response header, span exports, journal
// events, the cost ledger and /debug/requests.
//
// Robustness: identical in-flight requests share one compile
// (singleflight); finished adapters are memoized in a crash-safe
// content-addressed store that survives kill -9 (atomic writes, WAL
// recovery, checksum verification with quarantine — a torn write is
// recompiled, never served); SIGTERM/SIGINT drains gracefully: admission
// stops, queued and in-flight jobs finish up to -drain-timeout, then
// stragglers are hard-cancelled.
//
// Exit status: 0 after a clean drain, 1 on startup errors or a drain
// that needed hard cancellation.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"facc"
	"facc/internal/obs"
	"facc/internal/server"
	"facc/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
	addrFile := flag.String("addr-file", "",
		"write the bound address to this file once listening (for scripts)")
	storeDir := flag.String("store", "faccd-store",
		"adapter store directory (crash-safe content-addressed cache)")
	storePage := flag.Int("store-page-size", 0,
		"store B-tree page size in bytes (0 = default 4096)")
	storeCompact := flag.Int64("store-compact-pages", 0,
		"compact the store when it exceeds this many pages and half are dead (0 = default 4096, negative disables)")
	storeQuarFiles := flag.Int("store-quarantine-files", 0,
		"keep at most this many quarantined-evidence files (0 = default 512)")
	storeQuarAge := flag.Duration("store-quarantine-age", 0,
		"discard quarantined evidence older than this (0 = default 168h)")
	queue := flag.Int("queue", 64,
		"admission queue depth; requests beyond it are shed with 429")
	workers := flag.Int("workers", 0, "concurrent compile workers (0 = GOMAXPROCS)")
	requestTimeout := flag.Duration("request-timeout", 2*time.Minute,
		"wall-clock budget per compile job")
	candidateTimeout := flag.Duration("candidate-timeout", 0,
		"budget per fuzzed binding candidate (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"how long a SIGTERM drain waits for in-flight jobs before hard-cancelling")
	tests := flag.Int("tests", 10, "default IO examples per candidate (requests may override)")
	jflag := flag.Int("j", 0, "candidate-level parallelism per compile (0 = GOMAXPROCS)")
	faults := flag.String("faults", "",
		`inject accelerator faults for chaos testing, e.g. "chaos" or "error=0.3,seed=7"`)
	sloLatency := flag.Duration("slo-latency", time.Second,
		"per-request latency SLO target; slower compiles count toward the burn rate")
	sloObjective := flag.Float64("slo-objective", 0.99,
		"fraction of requests that must meet the SLO (burn rate = violation rate / error budget)")
	flightRec := flag.Int("flight-recorder", 32,
		"retain this many slowest and failed requests (full span/journal/ledger) at /debug/requests; -1 disables")
	cexPool := flag.String("cex-pool", "",
		"persist the discriminating-input counterexample pool (crash-safe JSONL) in this file across daemon runs")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "usage: faccd [flags] (takes no arguments)\n")
		flag.PrintDefaults()
		os.Exit(1)
	}

	opts := facc.Options{
		NumTests:         *tests,
		Workers:          *jflag,
		CandidateTimeout: *candidateTimeout,
		// A service hardens unconditionally: retries + breaker +
		// software-FFT degradation around every accelerator call.
		Harden: true,
	}
	if *faults != "" {
		fp, err := facc.ParseFaultProfile(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faccd: -faults: %v\n", err)
			os.Exit(1)
		}
		opts.Faults = &fp
	}

	tr := obs.New()
	st, err := store.OpenOptions(*storeDir, tr.Metrics(), store.Options{
		PageSize:           *storePage,
		AutoCompactPages:   *storeCompact,
		QuarantineMaxFiles: *storeQuarFiles,
		QuarantineMaxAge:   *storeQuarAge,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "faccd: %v\n", err)
		os.Exit(1)
	}

	// The counterexample pool survives daemon restarts: loaded before
	// serving, wired read-write into every compile (replay-first search
	// plus live kill recording, so it reranks mid-process), and flushed
	// after the drain. A corrupt pool is quarantined and the daemon
	// starts with an empty one.
	var pool *obs.CexPool
	if *cexPool != "" {
		p, info, err := obs.LoadCexPool(*cexPool)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faccd: -cex-pool %s: %v\n", *cexPool, err)
			os.Exit(1)
		}
		if info.Quarantined != "" {
			fmt.Fprintf(os.Stderr, "faccd: -cex-pool %s: corrupt pool quarantined to %s; starting empty\n",
				*cexPool, info.Quarantined)
		}
		pool = p
	}
	kills := obs.NewKillTable()

	srv := server.New(server.Config{
		QueueDepth:     *queue,
		Workers:        *workers,
		RequestTimeout: *requestTimeout,
		Store:          st,
		Tracer:         tr,
		Journal:        obs.NewJournal(),
		Ledger:         obs.NewLedger(),
		Kills:          kills,
		Cex:            pool,
		FlightRecorder: *flightRec,
		SLOLatency:     *sloLatency,
		SLOObjective:   *sloObjective,
		Options:        opts,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faccd: %v\n", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	fmt.Fprintf(os.Stderr, "faccd: serving on http://%s (store %s, queue %d)\n",
		bound, st.Dir(), *queue)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "faccd: %v\n", err)
			os.Exit(1)
		}
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "faccd: %v\n", err)
		os.Exit(1)
	}
	stop() // a second signal now kills immediately

	fmt.Fprintf(os.Stderr, "faccd: draining (up to %s)...\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(dctx)

	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	hs.Shutdown(hctx)
	if err := st.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "faccd: closing store: %v\n", err)
	}
	if *cexPool != "" {
		pool.Absorb(kills, time.Now())
		if err := pool.Flush(*cexPool); err != nil {
			fmt.Fprintf(os.Stderr, "faccd: flushing -cex-pool: %v\n", err)
		}
	}
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "faccd: %v\n", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "faccd: drained cleanly")
}
