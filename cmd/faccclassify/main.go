// Command faccclassify trains the ProGraML-style neural classifier on the
// OJClone-style dataset and reports cross-validation metrics (the paper's
// Fig. 11 protocol), or classifies the functions of a MiniC file.
//
// Usage:
//
//	faccclassify -cv                       # cross-validation curves
//	faccclassify -cv -full                 # paper-size protocol
//	faccclassify file.c                    # label the functions of a file
//	faccclassify -trace clf.json -metrics file.c  # traced classification
//
// The shared observability flags (-trace, -metrics, -serve) match facc and
// faccbench: -trace writes a Chrome trace_event file of the train/classify
// stages, -metrics prints the stage/counter summary to stderr, -serve
// exposes the live /metrics, /status, /trace and /debug/pprof endpoints
// for the duration of the run.
package main

import (
	"flag"
	"fmt"
	"os"

	"facc/internal/core"
	"facc/internal/eval"
	"facc/internal/minic"
	"facc/internal/obs"
	"facc/internal/obs/obsflag"
)

func main() {
	cv := flag.Bool("cv", false, "run the cross-validation experiment")
	full := flag.Bool("full", false, "paper-size protocol (20/class, 10 folds)")
	perClass := flag.Int("perclass", 12, "training instances per class for file classification")
	of := obsflag.Register(flag.CommandLine, "faccclassify")
	flag.Parse()

	if err := of.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "faccclassify: %v\n", err)
		os.Exit(1)
	}
	// Training and cross-validation are not context-aware, so a SIGINT or
	// SIGTERM flushes the requested -trace/-metrics output and exits
	// instead of dropping it on the floor.
	of.FlushOnSignal()
	tr := of.Tracer()
	// One run = one trace ID, stamped on every root span so exported
	// traces are joinable exactly like a served request's X-Facc-Trace.
	runID := obs.NewTraceID()
	finish := func() {
		if err := of.Finish(); err != nil {
			fmt.Fprintf(os.Stderr, "faccclassify: %v\n", err)
			os.Exit(1)
		}
	}

	if *cv {
		cfg := eval.DefaultFig11()
		if *full {
			cfg = eval.PaperFig11()
		}
		sp := tr.Span("crossvalidate").SetTrace(runID)
		_, err := eval.Fig11(os.Stdout, cfg)
		sp.End()
		finish()
		if err != nil {
			fmt.Fprintf(os.Stderr, "faccclassify: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: faccclassify [-cv [-full]] | faccclassify file.c\n")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faccclassify: %v\n", err)
		os.Exit(2)
	}
	fsp := tr.Span("frontend").SetTrace(runID).Str("file", path)
	f, err := minic.ParseAndCheck(path, string(src))
	fsp.End()
	if err != nil {
		finish()
		fmt.Fprintf(os.Stderr, "faccclassify: %v\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "faccclassify: training (%d instances/class)...\n", *perClass)
	tsp := tr.Span("train").SetTrace(runID).Int("per_class", int64(*perClass))
	clf, err := core.TrainClassifier(*perClass, 1)
	tsp.End()
	if err != nil {
		finish()
		fmt.Fprintf(os.Stderr, "faccclassify: %v\n", err)
		os.Exit(1)
	}
	csp := tr.Span("classify").SetTrace(runID).Str("file", path)
	candidates := clf.CandidateFunctions(f)
	csp.Int("candidates", int64(len(candidates))).End()
	defer finish()
	set := map[string]bool{}
	for _, c := range candidates {
		set[c] = true
	}
	for _, fn := range f.Funcs {
		if fn.Body == nil {
			continue
		}
		label := "-"
		if set[fn.Name] {
			label = "FFT candidate (top-3)"
		}
		fmt.Printf("%-24s %s\n", fn.Name, label)
	}
}
