// Command faccclassify trains the ProGraML-style neural classifier on the
// OJClone-style dataset and reports cross-validation metrics (the paper's
// Fig. 11 protocol), or classifies the functions of a MiniC file.
//
// Usage:
//
//	faccclassify -cv                       # cross-validation curves
//	faccclassify -cv -full                 # paper-size protocol
//	faccclassify file.c                    # label the functions of a file
package main

import (
	"flag"
	"fmt"
	"os"

	"facc/internal/core"
	"facc/internal/eval"
	"facc/internal/minic"
)

func main() {
	cv := flag.Bool("cv", false, "run the cross-validation experiment")
	full := flag.Bool("full", false, "paper-size protocol (20/class, 10 folds)")
	perClass := flag.Int("perclass", 12, "training instances per class for file classification")
	flag.Parse()

	if *cv {
		cfg := eval.DefaultFig11()
		if *full {
			cfg = eval.PaperFig11()
		}
		if _, err := eval.Fig11(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "faccclassify: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: faccclassify [-cv [-full]] | faccclassify file.c\n")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faccclassify: %v\n", err)
		os.Exit(2)
	}
	f, err := minic.ParseAndCheck(path, string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "faccclassify: %v\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "faccclassify: training (%d instances/class)...\n", *perClass)
	clf, err := core.TrainClassifier(*perClass, 1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faccclassify: %v\n", err)
		os.Exit(1)
	}
	candidates := clf.CandidateFunctions(f)
	set := map[string]bool{}
	for _, c := range candidates {
		set[c] = true
	}
	for _, fn := range f.Funcs {
		if fn.Body == nil {
			continue
		}
		label := "-"
		if set[fn.Name] {
			label = "FFT candidate (top-3)"
		}
		fmt.Printf("%-24s %s\n", fn.Name, label)
	}
}
