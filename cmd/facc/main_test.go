package main

import (
	"reflect"
	"testing"
)

func TestParseProfile(t *testing.T) {
	got, err := parseProfile("n=64,128,256;inverse=0,1")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]int64{
		"n":       {64, 128, 256},
		"inverse": {0, 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseProfile = %v, want %v", got, want)
	}
}

func TestParseProfileEmpty(t *testing.T) {
	got, err := parseProfile("")
	if err != nil || got != nil {
		t.Errorf("empty profile: %v, %v", got, err)
	}
}

func TestParseProfileWhitespace(t *testing.T) {
	got, err := parseProfile("n=64, 128")
	if err != nil {
		t.Fatal(err)
	}
	if len(got["n"]) != 2 || got["n"][1] != 128 {
		t.Errorf("got %v", got)
	}
}

func TestParseProfileErrors(t *testing.T) {
	for _, bad := range []string{"n", "n=abc", "n=1,x", "=1"} {
		if _, err := parseProfile(bad); err == nil {
			t.Errorf("%q: expected error", bad)
		}
	}
}
