// Command facc compiles a MiniC source file against an FFT accelerator
// target and prints the synthesized drop-in adapter.
//
// Usage:
//
//	facc -target ffta [-entry fft] [-profile n=64,128,256] [-tests 10]
//	     [-trace trace.json] [-metrics] [-serve :9090]
//	     [-journal prov.jsonl] [-explain] [-costs]
//	     [-search-report] [-cex-pool counterexamples.jsonl]
//	     [-timeout 30s] [-candidate-timeout 50ms] [-faults error=0.3,seed=7]
//	     file.c
//
// -trace writes a Chrome trace_event file (load in chrome://tracing or
// https://ui.perfetto.dev) with one nested span per pipeline stage down to
// individual fuzzed candidates; -metrics prints a human-readable summary of
// stage timings and pipeline counters to stderr; -serve exposes the live
// observability endpoints (/metrics Prometheus exposition, /status JSON,
// /trace download, /debug/pprof) for the duration of the run; -journal
// writes the synthesis provenance journal as JSONL; -explain renders it as
// a human-readable "why was / wasn't this adapter synthesised" report;
// -costs prints the synthesis cost ledger — how much interpreter work went
// to the winning candidate (useful) versus superseded or killed losers
// (speculative) and how much the oracle shared across duplicates, per
// target, with the waste ratio; -search-report prints the search
// observatory — the candidate funnel (generated → pre-filtered →
// dispatched → killed/superseded/survived), the kill-depth distribution,
// and the IO cases that discriminated the most binding families;
// -cex-pool persists those discriminating inputs across runs in a
// crash-safe JSONL counterexample pool, ranked by how many binding
// families each input has killed.
//
// Robustness: -timeout bounds the whole compilation's wall clock,
// -candidate-timeout bounds fuzzing any one binding candidate (a hung
// candidate costs one candidate, not the compile), and -faults injects
// seeded accelerator faults (transient errors, value corruption, latency
// spikes) while hardening the execution path with retries and a circuit
// breaker that degrades to the pure-software FFT.
//
// Exit status: 0 on success (adapter printed to stdout), 1 when no adapter
// could be synthesized (reason printed to stderr), 2 on usage/frontend
// errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"facc"
	"facc/internal/obs/obsflag"
)

func main() {
	target := flag.String("target", "ffta", "compilation target: ffta, powerquad, fftw")
	entry := flag.String("entry", "", "function to compile (default: consider all)")
	profileFlag := flag.String("profile", "",
		"value profile, e.g. \"n=64,128,256;inverse=0,1\"")
	tests := flag.Int("tests", 10, "IO examples per candidate")
	classify := flag.Bool("classify", false,
		"train the neural classifier for candidate detection (slower startup)")
	output := flag.String("o", "", "write the adapter to this file instead of stdout")
	integrate := flag.Bool("integrate", false,
		"emit the whole rewritten translation unit (call sites redirected to the adapter)")
	of := obsflag.RegisterSynth(flag.CommandLine, "facc")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: facc [flags] file.c\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "facc: %v\n", err)
		os.Exit(2)
	}

	profile, err := parseProfile(*profileFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "facc: %v\n", err)
		os.Exit(2)
	}

	opts := facc.Options{
		Entry:            *entry,
		ProfileValues:    profile,
		NumTests:         *tests,
		Workers:          of.Workers,
		Trace:            of.Tracer(),
		Journal:          of.Journal(),
		Ledger:           of.Ledger(),
		Kills:            of.Kills(),
		Deadline:         of.Timeout,
		CandidateTimeout: of.CandidateTimeout,
	}
	if of.Faults != "" {
		fp, err := facc.ParseFaultProfile(of.Faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "facc: -faults: %v\n", err)
			os.Exit(2)
		}
		opts.Faults = &fp
	}
	if err := of.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "facc: %v\n", err)
		os.Exit(2)
	}
	// -cex-pool is read-write: Start loaded it, synthesis replays its
	// ranked counterexamples first and records this run's kills into it
	// live, and Finish flushes the updated pool back to disk.
	opts.Cex = of.Pool()
	if *classify {
		clf, err := facc.Train(12, 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "facc: training classifier: %v\n", err)
			os.Exit(2)
		}
		opts.Classifier = clf
	}

	// SIGINT/SIGTERM cancel the compile context: the pipeline stops at its
	// next cancellation point and the Finish call below still flushes
	// -trace/-metrics/-journal output rather than leaving partial files.
	ctx, stop := of.WithSignals(context.Background())
	defer stop()
	// Stamp the run with a trace ID so spans, journal lines and ledger
	// accounts from this invocation are joinable, like a served request.
	ctx, _ = of.WithTrace(ctx)
	res, err := facc.CompileContext(ctx, path, string(src), *target, opts)
	if ferr := of.Finish(); ferr != nil {
		fmt.Fprintf(os.Stderr, "facc: %v\n", ferr)
		os.Exit(2)
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "facc: interrupted; observability output flushed\n")
		os.Exit(130)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "facc: %v\n", err)
		os.Exit(2)
	}
	if !res.OK() {
		fmt.Fprintf(os.Stderr, "facc: no adapter synthesized: %s\n", res.FailReason())
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%s\n", res)
	text := res.AdapterC()
	if *integrate {
		text, err = res.IntegratedUnit()
		if err != nil {
			fmt.Fprintf(os.Stderr, "facc: %v\n", err)
			os.Exit(1)
		}
	}
	if *output != "" {
		if err := os.WriteFile(*output, []byte(text), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "facc: %v\n", err)
			os.Exit(2)
		}
		return
	}
	fmt.Print(text)
}

// parseProfile parses "n=64,128;flag=0,1" into a value table.
func parseProfile(s string) (map[string][]int64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string][]int64{}
	for _, group := range strings.Split(s, ";") {
		name, vals, ok := strings.Cut(group, "=")
		if !ok || strings.TrimSpace(name) == "" {
			return nil, fmt.Errorf("malformed profile group %q (want name=v1,v2)", group)
		}
		for _, v := range strings.Split(vals, ",") {
			n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("profile value %q: %v", v, err)
			}
			out[name] = append(out[name], n)
		}
	}
	return out, nil
}
