// Command faccbench regenerates the paper's evaluation: Table 1 and
// Figures 8 through 16. Each experiment prints the same rows/series the
// paper reports (see DESIGN.md for the experiment index and EXPERIMENTS.md
// for paper-vs-measured numbers).
//
// Usage:
//
//	faccbench                       # run everything
//	faccbench -experiment fig13     # one experiment
//	faccbench -experiment fig11 -full   # paper-size classifier protocol
//	faccbench -experiment fig15 -trace corpus.json -metrics  # traced corpus compile
//	faccbench -experiment fig8 -serve :9090  # watch the corpus compile live
//	faccbench -experiment searchbench -bench-out BENCH_synth.json  # refresh the search section
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"facc/internal/core"
	"facc/internal/eval"
	"facc/internal/obs"
	"facc/internal/obs/obsflag"
)

func main() {
	experiment := flag.String("experiment", "all",
		"table1, fig8, fig9, fig10, fig11, fig12, fig13, fig14, fig15, fig16, ablation, all, or synthbench/searchbench/servebench/benchgate/crashmatrix (not in all)")
	full := flag.Bool("full", false, "use the paper-size Fig. 11 protocol (slow)")
	tests := flag.Int("tests", 5, "IO examples per candidate during compilation")
	benchOut := flag.String("bench-out", "",
		"with -experiment synthbench/servebench: also write the report as JSON to this file (e.g. BENCH_synth.json)")
	gateSynth := flag.String("gate-synth", "",
		`with -experiment benchgate: "baseline.json:fresh.json" pair of synthesis artifacts`)
	gateServe := flag.String("gate-serve", "",
		`with -experiment benchgate: "baseline.json:fresh.json" pair of serving artifacts`)
	gateTol := flag.Float64("gate-tolerance", 0.25,
		"with -experiment benchgate: allowed fractional regression before failing (0.25 = 25%)")
	crashDir := flag.String("crash-dir", "",
		"with -experiment crashmatrix: keep each crashed store (quarantine evidence included) under this directory for artifact upload")
	of := obsflag.RegisterSynth(flag.CommandLine, "faccbench")
	flag.Parse()

	if err := of.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "faccbench: %v\n", err)
		os.Exit(1)
	}
	if of.CandidateTimeout != 0 || of.Faults != "" {
		fmt.Fprintf(os.Stderr, "faccbench: -candidate-timeout and -faults apply to facc only; ignoring\n")
	}
	// SIGINT/SIGTERM cancel the run: experiments stop at the next
	// cancellation point and the observability exports below still flush,
	// so an interrupted run never leaves partial -trace/-journal files.
	ctx, stop := of.WithSignals(context.Background())
	defer stop()
	if of.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, of.Timeout)
		defer cancel()
	}
	var err error
	switch *experiment {
	case "synthbench":
		err = runSynthBench(ctx, *tests, of, *benchOut)
	case "searchbench":
		err = runSearchBench(ctx, *tests, of, *benchOut)
	case "servebench":
		err = runServeBench(ctx, *benchOut)
	case "benchgate":
		err = runBenchGate(*gateSynth, *gateServe, *gateTol)
	case "crashmatrix":
		err = runCrashMatrix(ctx, *benchOut, *crashDir)
	default:
		err = run(ctx, *experiment, *full, *tests, of.Tracer(), of.Journal(), of.Ledger())
	}
	if ferr := of.Finish(); ferr != nil {
		fmt.Fprintf(os.Stderr, "faccbench: %v\n", ferr)
		os.Exit(1)
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "faccbench: interrupted; observability output flushed\n")
		os.Exit(130)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "faccbench: %v\n", err)
		os.Exit(1)
	}
}

// runCrashMatrix crashes the adapter store at every durable operation in
// every mode and demands consistent recovery; -bench-out keeps the
// CRASH_MATRIX.json artifact, -crash-dir the crashed stores themselves
// (quarantine evidence included). A failing cell fails the run.
func runCrashMatrix(ctx context.Context, benchOut, crashDir string) error {
	fmt.Fprintf(os.Stderr, "faccbench: crash matrix (every page write, WAL append and fsync)...\n")
	cfg := eval.CrashMatrixConfig{}
	if crashDir != "" {
		if err := os.MkdirAll(crashDir, 0o755); err != nil {
			return err
		}
		cfg.Dir = crashDir
		cfg.KeepArtifacts = true
	}
	rep, err := eval.RunCrashMatrix(ctx, cfg)
	if err != nil {
		return err
	}
	rep.WriteText(os.Stdout)
	if benchOut != "" {
		out, err := os.Create(benchOut)
		if err != nil {
			return err
		}
		werr := rep.WriteJSON(out)
		if cerr := out.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Fprintf(os.Stderr, "faccbench: wrote %s\n", benchOut)
	}
	if !rep.OK() {
		return fmt.Errorf("crash matrix: %d of %d cells failed recovery", rep.Failed, rep.Runs)
	}
	return nil
}

// runServeBench saturates an in-process faccd-style compile service and
// reports latency quantiles plus shed/dedup/cache counts; -bench-out
// additionally writes the BENCH_serve.json artifact.
func runServeBench(ctx context.Context, benchOut string) error {
	fmt.Fprintf(os.Stderr, "faccbench: serving benchmark (saturating an in-process faccd)...\n")
	rep, err := eval.ServeBench(ctx, eval.ServeBenchConfig{})
	if err != nil {
		return err
	}
	rep.WriteText(os.Stdout)
	fmt.Fprintf(os.Stderr, "faccbench: fleet chaos benchmark (3 replicas, kill + lossy partition)...\n")
	fleetRep, err := eval.FleetBench(ctx, eval.FleetBenchConfig{})
	if err != nil {
		return err
	}
	fleetRep.WriteText(os.Stdout)
	rep.Fleet = fleetRep
	if benchOut != "" {
		out, err := os.Create(benchOut)
		if err != nil {
			return err
		}
		werr := rep.WriteJSON(out)
		if cerr := out.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Fprintf(os.Stderr, "faccbench: wrote %s\n", benchOut)
	}
	return nil
}

// runSynthBench measures the generate-and-test engine at Workers=1 versus
// Workers=N (-j, default GOMAXPROCS): corpus wall-clock, fuzz throughput,
// oracle cache hit-rate and cross-run adapter determinism. The summary
// prints to stdout; -bench-out additionally writes the JSON artifact.
// The shared kill table (non-nil under -search-report/-cex-pool/-serve)
// receives the sequential run's kill attribution, so the pool and the
// report see exactly the events behind the artifact's search section.
// -cex-pool seeds the priming pass: the measured runs replay clones of
// the primed pool, and Finish flushes the pool (priming kills included)
// back to the file.
func runSynthBench(ctx context.Context, tests int, of *obsflag.Flags, benchOut string) error {
	workers := of.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	counts := []int{1}
	if workers > 1 {
		counts = append(counts, workers)
	}
	fmt.Fprintf(os.Stderr, "faccbench: synthesis benchmark at workers=%v...\n", counts)
	rep, err := eval.SynthBench(ctx, []string{"ffta", "powerquad", "fftw"}, tests, counts, of.Kills(), of.Pool())
	if err != nil {
		return err
	}
	rep.WriteText(os.Stdout)
	if benchOut != "" {
		out, err := os.Create(benchOut)
		if err != nil {
			return err
		}
		werr := rep.WriteJSON(out)
		if cerr := out.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Fprintf(os.Stderr, "faccbench: wrote %s\n", benchOut)
	}
	return nil
}

// runSearchBench compiles the corpus once at Workers=1 with the kill
// table attached and prints the search observatory report: the funnel,
// kill-depth distribution and top discriminating inputs. With
// -bench-out it merges the summary into that BENCH_synth.json's
// "search" section (other sections are preserved; the file is created
// with only the search section when absent). -cex-pool rides along
// read-write: its ranked counterexamples are replayed first, kills are
// recorded into it live, and the shared observability Finish path
// flushes it back.
func runSearchBench(ctx context.Context, tests int, of *obsflag.Flags, benchOut string) error {
	kills := of.Kills()
	if kills == nil {
		kills = obs.NewKillTable()
	}
	fmt.Fprintf(os.Stderr, "faccbench: search benchmark (sequential corpus compile, kill attribution on)...\n")
	if err := eval.SearchBench(ctx, []string{"ffta", "powerquad", "fftw"}, tests, kills, of.Pool()); err != nil {
		return err
	}
	if err := kills.WriteSearchReport(os.Stdout, 10); err != nil {
		return err
	}
	if benchOut != "" {
		var rep eval.SynthBenchReport
		if data, err := os.ReadFile(benchOut); err == nil {
			if err := json.Unmarshal(data, &rep); err != nil {
				return fmt.Errorf("-bench-out %s: %w", benchOut, err)
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			return err
		}
		rep.Search = kills.Summary()
		out, err := os.Create(benchOut)
		if err != nil {
			return err
		}
		werr := rep.WriteJSON(out)
		if cerr := out.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Fprintf(os.Stderr, "faccbench: merged search section into %s\n", benchOut)
	}
	return nil
}

// runBenchGate compares fresh benchmark artifacts against committed
// baselines and exits non-zero on a regression beyond the tolerance.
// Each pair argument is "baseline.json:fresh.json"; empty skips the pair.
func runBenchGate(synthPair, servePair string, tol float64) error {
	cfg := eval.GateConfig{Tolerance: tol}
	var ok bool
	if synthPair != "" {
		if cfg.BaselineSynth, cfg.FreshSynth, ok = strings.Cut(synthPair, ":"); !ok {
			return fmt.Errorf("-gate-synth: want baseline.json:fresh.json, got %q", synthPair)
		}
	}
	if servePair != "" {
		if cfg.BaselineServe, cfg.FreshServe, ok = strings.Cut(servePair, ":"); !ok {
			return fmt.Errorf("-gate-serve: want baseline.json:fresh.json, got %q", servePair)
		}
	}
	rep, err := eval.BenchGate(cfg)
	if err != nil {
		return err
	}
	rep.WriteText(os.Stdout)
	if !rep.OK() {
		return fmt.Errorf("bench gate failed: %d regression(s)", rep.Failures)
	}
	return nil
}

func run(ctx context.Context, experiment string, full bool, tests int, tr *obs.Tracer, j *obs.Journal, led *obs.Ledger) error {
	w := os.Stdout
	sep := func() { fmt.Fprintln(w) }

	want := func(name string) bool { return experiment == "all" || experiment == name }

	// Shared state, computed lazily.
	var outcomes []*eval.CompileOutcome
	needOutcomes := func(targets []string) error {
		if outcomes != nil {
			return nil
		}
		fmt.Fprintf(os.Stderr, "faccbench: compiling the corpus (%d targets x 25 programs)...\n",
			len(targets))
		var err error
		outcomes, err = eval.CompileAll(ctx, targets, tests, tr, j, led)
		return err
	}
	allTargets := []string{"ffta", "powerquad", "fftw"}
	prof := eval.NewProfiler()

	if want("table1") {
		eval.Table1(w)
		sep()
	}
	if want("fig8") {
		if err := needOutcomes(allTargets); err != nil {
			return err
		}
		eval.Fig8(w, outcomes)
		sep()
	}
	if want("fig9") {
		if err := needOutcomes(allTargets); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "faccbench: training classifier for fig9...\n")
		clf, err := core.TrainClassifier(12, 1)
		if err != nil {
			return err
		}
		if err := eval.Fig9(w, outcomes, clf); err != nil {
			return err
		}
		sep()
	}
	if want("fig10") {
		if err := eval.Fig10(w, prof); err != nil {
			return err
		}
		sep()
	}
	if want("fig11") {
		cfg := eval.DefaultFig11()
		if full {
			cfg = eval.PaperFig11()
		}
		if _, err := eval.Fig11(w, cfg); err != nil {
			return err
		}
		sep()
	}
	if want("fig12") {
		if err := eval.Fig12(w); err != nil {
			return err
		}
		sep()
	}
	if want("fig13") {
		if err := eval.Fig13(w, prof); err != nil {
			return err
		}
		sep()
	}
	if want("fig14") {
		if err := eval.Fig14(w, prof); err != nil {
			return err
		}
		sep()
	}
	if want("fig15") {
		if err := needOutcomes(allTargets); err != nil {
			return err
		}
		eval.Fig15(w, outcomes)
		sep()
	}
	if want("fig16") {
		if err := needOutcomes(allTargets); err != nil {
			return err
		}
		eval.Fig16(w, outcomes)
		sep()
	}
	if want("ablation") {
		if err := eval.Ablation(w); err != nil {
			return err
		}
		sep()
	}
	return nil
}
